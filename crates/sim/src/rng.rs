//! A tiny xorshift64* PRNG for in-library randomness.
//!
//! Library crates (e.g. the skiplist's tower-height draws) need cheap
//! randomness without pulling the full `rand` stack into every crate;
//! benchmark workloads in `pto-bench` use `rand` proper.

use std::sync::atomic::{AtomicU64, Ordering};

/// The golden-ratio Weyl increment: coprime to 2^64, so stepping a counter
/// by it visits every 64-bit value before repeating and consecutive seeds
/// are far apart in Hamming distance.
pub const WEYL_STEP: u64 = 0x9E37_79B9_7F4A_7C15;

/// A process-global Weyl sequence of per-thread RNG seeds.
///
/// Several sites (HTM chaos injection, skiplist tower heights, mound leaf
/// probes, policy backoff jitter, the lincheck explorer) need one distinct,
/// reproducible seed per thread. Seeding from a `thread_local!` static's
/// address is wrong twice over: the `LocalKey` is one process-global object
/// (every thread would get the *same* seed, perfectly correlating their
/// draws), and addresses vary run to run. A shared counter stepped by
/// [`WEYL_STEP`] gives each thread a unique seed that depends only on
/// first-use order.
///
/// ```
/// use pto_sim::rng::{WeylSeq, XorShift64};
///
/// static SEEDS: WeylSeq = WeylSeq::new(0x1234_5678);
/// let mut rng = XorShift64::new(SEEDS.next_seed());
/// let _ = rng.next_u64();
/// ```
pub struct WeylSeq {
    state: AtomicU64,
}

impl WeylSeq {
    /// A sequence starting at `origin` (use a per-site constant so distinct
    /// sites draw from distinct streams).
    pub const fn new(origin: u64) -> Self {
        WeylSeq {
            state: AtomicU64::new(origin),
        }
    }

    /// The next seed in the sequence. Never returns zero (xorshift's fixed
    /// point): the rare zero step is remapped to [`WEYL_STEP`] itself.
    pub fn next_seed(&self) -> u64 {
        let s = self.state.fetch_add(WEYL_STEP, Ordering::Relaxed);
        if s == 0 {
            WEYL_STEP
        } else {
            s
        }
    }
}

/// xorshift64* — 8 bytes of state, passes BigCrush's small set, more than
/// adequate for geometric level draws and workload mixing.
#[derive(Clone, Debug)]
pub struct XorShift64 {
    state: u64,
}

impl XorShift64 {
    /// Seed the generator. A zero seed is remapped (xorshift has a zero
    /// fixed point).
    pub fn new(seed: u64) -> Self {
        XorShift64 {
            state: if seed == 0 { 0x9E37_79B9_7F4A_7C15 } else { seed },
        }
    }

    /// Next 64 random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform draw in `[0, bound)`. `bound` must be nonzero.
    #[inline]
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Lemire-style multiply-shift reduction; bias is negligible for the
        // bounds used here (≤ 2^32).
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// A coin flip with probability `num/den` of returning true.
    #[inline]
    pub fn chance(&mut self, num: u64, den: u64) -> bool {
        self.below(den) < num
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weyl_seq_yields_distinct_nonzero_seeds() {
        let seq = WeylSeq::new(7);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..1_000 {
            let s = seq.next_seed();
            assert_ne!(s, 0, "WeylSeq must never emit xorshift's fixed point");
            assert!(seen.insert(s), "WeylSeq repeated a seed");
        }
    }

    #[test]
    fn weyl_seq_zero_origin_is_remapped() {
        let seq = WeylSeq::new(0);
        assert_eq!(seq.next_seed(), WEYL_STEP);
        assert_eq!(seq.next_seed(), WEYL_STEP);
        assert_eq!(seq.next_seed(), WEYL_STEP.wrapping_mul(2));
    }

    #[test]
    fn weyl_seq_is_first_use_order_deterministic() {
        let a = WeylSeq::new(42);
        let b = WeylSeq::new(42);
        for _ in 0..16 {
            assert_eq!(a.next_seed(), b.next_seed());
        }
    }

    #[test]
    fn zero_seed_is_remapped() {
        let mut r = XorShift64::new(0);
        assert_ne!(r.next_u64(), 0);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = XorShift64::new(42);
        let mut b = XorShift64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn below_respects_bound() {
        let mut r = XorShift64::new(7);
        for _ in 0..10_000 {
            assert!(r.below(37) < 37);
        }
    }

    #[test]
    fn below_is_roughly_uniform() {
        let mut r = XorShift64::new(99);
        let mut buckets = [0u32; 8];
        let n = 80_000;
        for _ in 0..n {
            buckets[r.below(8) as usize] += 1;
        }
        for &b in &buckets {
            // Each bucket expects 10_000; allow ±10%.
            assert!((9_000..=11_000).contains(&b), "bucket {b}");
        }
    }

    #[test]
    fn chance_matches_probability() {
        let mut r = XorShift64::new(5);
        let hits = (0..100_000).filter(|_| r.chance(1, 4)).count();
        assert!((23_000..=27_000).contains(&hits), "hits {hits}");
    }
}
