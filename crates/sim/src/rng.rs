//! A tiny xorshift64* PRNG for in-library randomness.
//!
//! Library crates (e.g. the skiplist's tower-height draws) need cheap
//! randomness without pulling the full `rand` stack into every crate;
//! benchmark workloads in `pto-bench` use `rand` proper.
//!
//! # Per-lane streams at scale
//!
//! The original per-thread seeding scheme ([`WeylSeq`]) hands out seeds in
//! **first-use order**: fine when 8 threads claim 8 seeds, but audited
//! broken at 64–512 lanes. Its two failure modes at scale:
//!
//! * *first-use-order nondeterminism* — which OS thread reaches the site
//!   first depends on the scheduler, so a 256-lane run reseeds lanes
//!   differently every run, and two cells sharded onto a thread pool steal
//!   seeds from each other's sequence;
//! * *linear seed correlation* — consecutive seeds differ by exactly
//!   [`WEYL_STEP`]; xorshift64* is not a hash, and hundreds of seeds on
//!   one arithmetic progression produce measurably correlated low bits
//!   across neighbouring lanes.
//!
//! [`lane_draw`] replaces that scheme for thread-local RNG sites: the
//! per-thread state reseeds from `mix64(site ⊕ f(stream key, lane))` —
//! a full avalanche mix of *who you are* (gate lane + cell stream key)
//! rather than *when you arrived*. Draws become reproducible per
//! `(cell, lane)` and pairwise-independent across the whole lane range
//! (asserted by the correlation test below).

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

/// The golden-ratio Weyl increment: coprime to 2^64, so stepping a counter
/// by it visits every 64-bit value before repeating and consecutive seeds
/// are far apart in Hamming distance.
pub const WEYL_STEP: u64 = 0x9E37_79B9_7F4A_7C15;

/// A process-global Weyl sequence of per-thread RNG seeds.
///
/// Several sites (HTM chaos injection, skiplist tower heights, mound leaf
/// probes, policy backoff jitter, the lincheck explorer) need one distinct,
/// reproducible seed per thread. Seeding from a `thread_local!` static's
/// address is wrong twice over: the `LocalKey` is one process-global object
/// (every thread would get the *same* seed, perfectly correlating their
/// draws), and addresses vary run to run. A shared counter stepped by
/// [`WEYL_STEP`] gives each thread a unique seed that depends only on
/// first-use order.
///
/// ```
/// use pto_sim::rng::{WeylSeq, XorShift64};
///
/// static SEEDS: WeylSeq = WeylSeq::new(0x1234_5678);
/// let mut rng = XorShift64::new(SEEDS.next_seed());
/// let _ = rng.next_u64();
/// ```
pub struct WeylSeq {
    state: AtomicU64,
}

impl WeylSeq {
    /// A sequence starting at `origin` (use a per-site constant so distinct
    /// sites draw from distinct streams).
    pub const fn new(origin: u64) -> Self {
        WeylSeq {
            state: AtomicU64::new(origin),
        }
    }

    /// The next seed in the sequence. Never returns zero (xorshift's fixed
    /// point): the rare zero step is remapped to [`WEYL_STEP`] itself.
    pub fn next_seed(&self) -> u64 {
        let s = self.state.fetch_add(WEYL_STEP, Ordering::Relaxed);
        if s == 0 {
            WEYL_STEP
        } else {
            s
        }
    }
}

/// SplitMix64 finalizer: a full-avalanche 64-bit mix (every input bit
/// flips each output bit with probability ~1/2). Turns structured inputs
/// (lane indices, site constants, arithmetic progressions) into
/// independent-looking seeds.
#[inline]
pub const fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The seed of the `(site, stream key, lane tag)` stream — the identity
/// function behind [`lane_draw`], exposed so tests can audit seed quality
/// over the full 0–512 lane range without spawning 512 threads.
#[inline]
pub fn stream_seed(site: u64, stream_key: u64, lane_tag: u64) -> u64 {
    mix64(site ^ mix64(stream_key ^ lane_tag.rotate_left(32)))
}

/// One deterministic per-lane draw from a site-local stream.
///
/// `site` names the call site (a per-site constant); `slot` is the site's
/// thread-local `(seed_basis, state)` pair. The stream identity is
/// `(site, ctx stream key, gate lane)`: when any of those change under
/// the thread (a new cell adopted the thread, or the thread attached to a
/// different lane), the state transparently reseeds, so one OS thread
/// serving many cells/lanes never leaks draws across them. Threads off
/// the gate and outside any cell scope share the deterministic
/// `(site, 0, unattached)` stream.
#[inline]
pub fn lane_draw(site: u64, slot: &Cell<(u64, u64)>) -> u64 {
    let lane_tag = match crate::clock::current_lane() {
        Some(l) => l as u64 + 1,
        None => 0,
    };
    let basis = stream_seed(site, crate::ctx::stream_key(), lane_tag);
    let (seed_basis, mut state) = slot.get();
    if seed_basis != basis || state == 0 {
        // mix64 is a bijection of a nonzero-offset add-mix, so `basis` can
        // be 0 for exactly one input; remap like XorShift64::new does.
        state = if basis == 0 { WEYL_STEP } else { basis };
    }
    // xorshift64* step (same generator as XorShift64::next_u64).
    let mut x = state;
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    slot.set((basis, x));
    x.wrapping_mul(0x2545_F491_4F6C_DD1D)
}

/// [`lane_draw`] reduced to `[0, bound)` with the same multiply-shift
/// reduction as [`XorShift64::below`], for sites that need a bounded draw
/// (backoff windows, leaf probes). `bound` must be nonzero.
#[inline]
pub fn lane_draw_below(site: u64, slot: &Cell<(u64, u64)>, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    ((lane_draw(site, slot) as u128 * bound as u128) >> 64) as u64
}

/// xorshift64* — 8 bytes of state, passes BigCrush's small set, more than
/// adequate for geometric level draws and workload mixing.
#[derive(Clone, Debug)]
pub struct XorShift64 {
    state: u64,
}

impl XorShift64 {
    /// Seed the generator. A zero seed is remapped (xorshift has a zero
    /// fixed point).
    pub fn new(seed: u64) -> Self {
        XorShift64 {
            state: if seed == 0 { 0x9E37_79B9_7F4A_7C15 } else { seed },
        }
    }

    /// Next 64 random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform draw in `[0, bound)`. `bound` must be nonzero.
    #[inline]
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Lemire-style multiply-shift reduction; bias is negligible for the
        // bounds used here (≤ 2^32).
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// A coin flip with probability `num/den` of returning true.
    #[inline]
    pub fn chance(&mut self, num: u64, den: u64) -> bool {
        self.below(den) < num
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weyl_seq_yields_distinct_nonzero_seeds() {
        let seq = WeylSeq::new(7);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..1_000 {
            let s = seq.next_seed();
            assert_ne!(s, 0, "WeylSeq must never emit xorshift's fixed point");
            assert!(seen.insert(s), "WeylSeq repeated a seed");
        }
    }

    #[test]
    fn weyl_seq_zero_origin_is_remapped() {
        let seq = WeylSeq::new(0);
        assert_eq!(seq.next_seed(), WEYL_STEP);
        assert_eq!(seq.next_seed(), WEYL_STEP);
        assert_eq!(seq.next_seed(), WEYL_STEP.wrapping_mul(2));
    }

    #[test]
    fn weyl_seq_is_first_use_order_deterministic() {
        let a = WeylSeq::new(42);
        let b = WeylSeq::new(42);
        for _ in 0..16 {
            assert_eq!(a.next_seed(), b.next_seed());
        }
    }

    #[test]
    fn zero_seed_is_remapped() {
        let mut r = XorShift64::new(0);
        assert_ne!(r.next_u64(), 0);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = XorShift64::new(42);
        let mut b = XorShift64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn below_respects_bound() {
        let mut r = XorShift64::new(7);
        for _ in 0..10_000 {
            assert!(r.below(37) < 37);
        }
    }

    #[test]
    fn below_is_roughly_uniform() {
        let mut r = XorShift64::new(99);
        let mut buckets = [0u32; 8];
        let n = 80_000;
        for _ in 0..n {
            buckets[r.below(8) as usize] += 1;
        }
        for &b in &buckets {
            // Each bucket expects 10_000; allow ±10%.
            assert!((9_000..=11_000).contains(&b), "bucket {b}");
        }
    }

    #[test]
    fn chance_matches_probability() {
        let mut r = XorShift64::new(5);
        let hits = (0..100_000).filter(|_| r.chance(1, 4)).count();
        assert!((23_000..=27_000).contains(&hits), "hits {hits}");
    }

    #[test]
    fn mix64_avalanches_adjacent_inputs() {
        // Single-bit / increment-adjacent inputs must produce outputs
        // about 32 bits apart — the property WEYL_STEP progressions lack.
        for i in 0..256u64 {
            let d = (mix64(i) ^ mix64(i + 1)).count_ones();
            assert!((12..=52).contains(&d), "mix64({i})^mix64({})={d} bits", i + 1);
        }
    }

    #[test]
    fn lane_streams_are_pairwise_uncorrelated_up_to_512_lanes() {
        // The bug this guards: Weyl first-use seeding put hundreds of lane
        // seeds on one arithmetic progression. For every lane pair at
        // several strides, the XOR of their streams must look like noise
        // (≈50% ones); a linear seed relation pushes it far off.
        const SITE: u64 = 0xC0A0_5EED_0000_0001;
        const DRAWS: usize = 64;
        let stream = |lane: u64| -> Vec<u64> {
            let mut r = XorShift64::new(stream_seed(SITE, 0, lane + 1));
            (0..DRAWS).map(|_| r.next_u64()).collect()
        };
        let streams: Vec<Vec<u64>> = (0..512).map(stream).collect();
        // Distinct seeds across the whole range (collision audit).
        let mut seeds = std::collections::HashSet::new();
        for lane in 0..512u64 {
            assert!(
                seeds.insert(stream_seed(SITE, 0, lane + 1)),
                "seed collision at lane {lane}"
            );
        }
        let total_bits = (DRAWS * 64) as f64;
        for stride in [1usize, 2, 3, 7, 8, 16, 64, 255, 256] {
            for a in 0..512 - stride {
                let b = a + stride;
                let diff: u32 = streams[a]
                    .iter()
                    .zip(&streams[b])
                    .map(|(x, y)| (x ^ y).count_ones())
                    .sum();
                let frac = diff as f64 / total_bits;
                assert!(
                    (0.44..=0.56).contains(&frac),
                    "lanes {a}/{b}: xor density {frac:.3} — correlated streams"
                );
            }
        }
    }

    #[test]
    fn distinct_stream_keys_give_distinct_streams() {
        // Two cells running the same lane of the same site must not share
        // draws (the sharded-harness requirement).
        const SITE: u64 = 77;
        let mut seen = std::collections::HashSet::new();
        for key in 0..256u64 {
            assert!(seen.insert(stream_seed(SITE, mix64(key), 1)));
        }
    }

    #[test]
    fn lane_draw_reseeds_when_identity_changes() {
        use std::cell::Cell;
        const SITE: u64 = 0xABCD;
        let slot = Cell::new((0u64, 0u64));
        // Unattached, key 0: a fixed deterministic stream.
        let a1 = lane_draw(SITE, &slot);
        let a2 = lane_draw(SITE, &slot);
        assert_ne!(a1, a2, "stream must advance");
        // New stream key ⇒ transparently reseeds mid-thread.
        let b1 = {
            let _k = crate::ctx::stream_scope(9);
            lane_draw(SITE, &slot)
        };
        assert_ne!(b1, a1);
        // Back to key 0 ⇒ the original stream restarts from its seed.
        let again = lane_draw(SITE, &slot);
        assert_eq!(again, a1, "same identity must replay the same stream");
    }

    #[test]
    fn lane_draw_streams_differ_per_lane_in_a_sim() {
        use std::cell::Cell;
        use std::sync::Mutex;
        const SITE: u64 = 0x5EED;
        thread_local! {
            static SLOT: Cell<(u64, u64)> = const { Cell::new((0, 0)) };
        }
        let draws = Mutex::new(Vec::new());
        crate::sched::Sim::new(8).run(|lane| {
            let d = SLOT.with(|s| lane_draw(SITE, s));
            draws.lock().unwrap().push((lane, d));
        });
        let mut got = draws.into_inner().unwrap();
        got.sort();
        let unique: std::collections::HashSet<u64> =
            got.iter().map(|&(_, d)| d).collect();
        assert_eq!(unique.len(), 8, "lanes shared a draw: {got:?}");
    }
}
