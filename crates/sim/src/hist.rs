//! Log2-bucketed latency histograms over virtual cycles.
//!
//! The bench drivers record one sample per completed operation (its
//! virtual-cycle latency); `report.rs` renders p50/p90/p99/max columns from
//! the resulting [`HistSnapshot`]s. Buckets are powers of two — bucket `i`
//! covers `[2^i, 2^(i+1))` (bucket 0 also holds 0) — so recording is two
//! relaxed atomic RMWs and no allocation, and a percentile is exact to
//! within a 2× bucket width while `max` is exact.
//!
//! Recording never calls [`charge`](crate::charge): histograms observe the
//! simulation, they are not part of the cost model.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of buckets: one per possible `ilog2` of a `u64` sample.
pub const BUCKETS: usize = 64;

/// The bucket index a sample lands in (`0` and `1` share bucket 0).
#[inline]
pub fn bucket_of(v: u64) -> usize {
    v.checked_ilog2().unwrap_or(0) as usize
}

/// Inclusive `[lo, hi]` sample bounds of bucket `i`.
pub fn bucket_bounds(i: usize) -> (u64, u64) {
    assert!(i < BUCKETS);
    let lo = if i == 0 { 0 } else { 1u64 << i };
    let hi = if i >= 63 { u64::MAX } else { (1u64 << (i + 1)) - 1 };
    (lo, hi)
}

/// A concurrently-recordable histogram (static-friendly: `new` is const).
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Histogram {
    pub const fn new() -> Self {
        Histogram {
            buckets: [const { AtomicU64::new(0) }; BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Record one sample. Relaxed atomics: per-sample totals are exact,
    /// cross-thread ordering is irrelevant for a histogram.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        // Saturate rather than wrap: 512 lanes × long runs × cycle-scale
        // samples genuinely reach u64 range, and a wrapped sum silently
        // corrupts `mean`. Saturating add of non-negatives is
        // order-independent (min(Σ, MAX)), so concurrent recording and
        // `merge` agree on the saturated value.
        let mut cur = self.sum.load(Ordering::Relaxed);
        loop {
            let next = cur.saturating_add(v);
            match self
                .sum
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Copy out the current contents.
    pub fn snapshot(&self) -> HistSnapshot {
        HistSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }

    /// Add a snapshot's samples into this histogram (scope-flush path:
    /// a scoped accumulator drains into the process-global one). Sum
    /// saturates like [`Histogram::record`] does.
    pub fn absorb(&self, s: &HistSnapshot) {
        for (b, &n) in self.buckets.iter().zip(&s.buckets) {
            if n > 0 {
                b.fetch_add(n, Ordering::Relaxed);
            }
        }
        self.count.fetch_add(s.count, Ordering::Relaxed);
        let mut cur = self.sum.load(Ordering::Relaxed);
        loop {
            let next = cur.saturating_add(s.sum);
            match self
                .sum
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
        self.max.fetch_max(s.max, Ordering::Relaxed);
    }

    /// Zero everything (harness use, between scoped regions).
    pub fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

/// A point-in-time copy of a [`Histogram`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HistSnapshot {
    pub buckets: [u64; BUCKETS],
    pub count: u64,
    /// Saturating sum of all samples: `min(Σ samples, u64::MAX)`. The
    /// accumulator and `merge` both saturate, so the value is independent
    /// of recording/merge order even past overflow.
    pub sum: u64,
    /// Largest recorded sample (0 when empty); exact, unlike percentiles.
    pub max: u64,
}

impl Default for HistSnapshot {
    fn default() -> Self {
        HistSnapshot {
            buckets: [0; BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }
}

impl HistSnapshot {
    /// Bucket-wise sum: `a.merge(&b)` equals the histogram of the
    /// concatenated sample streams.
    pub fn merge(&self, other: &HistSnapshot) -> HistSnapshot {
        HistSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].saturating_add(other.buckets[i])),
            count: self.count.saturating_add(other.count),
            sum: self.sum.saturating_add(other.sum),
            max: self.max.max(other.max),
        }
    }

    /// Mean sample value (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The `p`-th percentile (0 < p ≤ 100), as the upper bound of the
    /// bucket containing the rank-`⌈p·n/100⌉` sample, clamped to `max` so
    /// every percentile is a value the stream could actually contain and
    /// `p ≤ 100` implies `percentile(p) ≤ max`. Returns 0 when empty.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((p / 100.0 * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bucket_bounds(i).1.min(self.max);
            }
        }
        self.max
    }

    pub fn p50(&self) -> u64 {
        self.percentile(50.0)
    }

    pub fn p90(&self) -> u64 {
        self.percentile(90.0)
    }

    pub fn p99(&self) -> u64 {
        self.percentile(99.0)
    }

    /// The p99.9 tail: resolves 1-in-1000 outliers that p99 averages away.
    pub fn p999(&self) -> u64 {
        self.percentile(99.9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proptest::{check, range_u64, range_usize, vec_of, Config};

    fn hist_of(samples: &[u64]) -> HistSnapshot {
        let h = Histogram::new();
        for &s in samples {
            h.record(s);
        }
        h.snapshot()
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let s = Histogram::new().snapshot();
        assert_eq!(s.count, 0);
        assert_eq!(s.max, 0);
        assert_eq!(s.p50(), 0);
        assert_eq!(s.p99(), 0);
        assert_eq!(s.mean(), 0.0);
    }

    #[test]
    fn single_sample_dominates_every_percentile() {
        let s = hist_of(&[37]);
        assert_eq!(s.p50(), 37);
        assert_eq!(s.p99(), 37);
        assert_eq!(s.max, 37);
        assert_eq!(s.mean(), 37.0);
    }

    #[test]
    fn percentiles_track_a_known_distribution() {
        // 99 samples of 10 and one of 100_000: p50/p90 sit in 10's bucket,
        // max catches the outlier.
        let mut samples = vec![10u64; 99];
        samples.push(100_000);
        let s = hist_of(&samples);
        assert_eq!(s.count, 100);
        assert!(s.p50() < 16, "p50 {} not in 10's bucket", s.p50());
        assert!(s.p90() < 16);
        assert_eq!(s.max, 100_000);
        assert!(s.p99() <= s.max);
    }

    #[test]
    fn p999_resolves_the_tail_bucket() {
        // 999 samples of 10 and one outlier: p99 stays in 10's bucket
        // (rank 990 of 1000) while p99.9 (rank 1000) lands on the outlier.
        let mut samples = vec![10u64; 999];
        samples.push(100_000);
        let s = hist_of(&samples);
        assert_eq!(s.count, 1000);
        assert!(s.p99() < 16, "p99 {} should still sit in 10's bucket", s.p99());
        assert_eq!(s.p999(), 100_000, "p99.9 must catch the 1-in-1000 tail");
        assert!(s.p999() <= s.max);
        // Monotone through the new percentile.
        assert!(s.p99() <= s.p999());
        // A 1-in-10000 outlier is invisible to p99.9 (rank 9990 of 10000
        // stays in the bulk) but not to max.
        let mut wide = vec![10u64; 9_999];
        wide.push(100_000);
        let t = hist_of(&wide);
        assert!(t.p999() < 16, "p99.9 {} must stay in the bulk", t.p999());
        assert_eq!(t.max, 100_000);
    }

    #[test]
    fn reset_zeroes_everything() {
        let h = Histogram::new();
        h.record(5);
        h.record(1 << 40);
        h.reset();
        assert_eq!(h.snapshot(), HistSnapshot::default());
    }

    #[test]
    fn bucket_bounds_partition_u64() {
        // Buckets tile the whole domain with no gaps or overlaps.
        assert_eq!(bucket_bounds(0), (0, 1));
        for i in 1..BUCKETS {
            let (lo, hi) = bucket_bounds(i);
            assert_eq!(lo, bucket_bounds(i - 1).1 + 1);
            assert!(hi >= lo);
        }
        assert_eq!(bucket_bounds(BUCKETS - 1).1, u64::MAX);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let empty = HistSnapshot::default();
        assert_eq!(empty.merge(&empty), empty);
        let s = hist_of(&[3, 17, 1 << 50]);
        assert_eq!(s.merge(&empty), s);
        assert_eq!(empty.merge(&s), s);
    }

    #[test]
    fn single_bucket_stream_pins_every_percentile_to_that_bucket() {
        // All samples share bucket 5 ([32, 63]): every percentile must be
        // clamped to the stream max, and only bucket 5 is populated.
        let s = hist_of(&[32, 40, 63, 33, 60]);
        assert_eq!(s.buckets[5], 5);
        assert_eq!(s.buckets.iter().sum::<u64>(), 5);
        for p in [0.001, 1.0, 50.0, 99.0, 100.0] {
            let v = s.percentile(p);
            assert!((32..=63).contains(&v), "p{p} = {v} outside bucket");
            assert!(v <= s.max);
        }
        assert_eq!(s.percentile(100.0), 63.min(s.max));
    }

    #[test]
    fn tiny_percentile_clamps_rank_to_first_sample() {
        // rank = ceil(p·n/100) clamps to 1, never 0.
        let s = hist_of(&[8, 1 << 30]);
        assert_eq!(s.percentile(0.000001), 15.min(s.max));
    }

    #[test]
    fn sum_saturates_while_max_and_count_stay_exact() {
        // Regression (lane-scaling overflow audit): the sum accumulator
        // used a wrapping fetch_add, so 512-lane × long-run totals wrapped
        // and `mean` went nonsense. It now saturates, merge saturates
        // identically, and merge-vs-concat equality survives overflow.
        let a = hist_of(&[u64::MAX, u64::MAX]);
        assert_eq!(a.count, 2);
        assert_eq!(a.max, u64::MAX);
        assert_eq!(a.sum, u64::MAX, "sum must clamp, not wrap");
        let b = hist_of(&[2]);
        let merged = a.merge(&b);
        assert_eq!(merged.sum, u64::MAX);
        assert_eq!(merged, hist_of(&[u64::MAX, u64::MAX, 2]));
        // A saturated mean stays a huge (not tiny wrapped) value.
        assert!(merged.mean() > (u64::MAX / 4) as f64);
        // Percentiles remain bounded by max even at the saturated end.
        assert_eq!(merged.percentile(100.0), u64::MAX);
    }

    // -- satellite: proptest-lite properties over arbitrary u64 samples --

    #[test]
    fn prop_percentiles_are_monotone_and_bounded_by_max() {
        check(
            &Config::with_cases(128),
            "hist_percentile_monotone",
            &vec_of(range_u64(0..u64::MAX), 0..128),
            |samples| {
                let s = hist_of(samples);
                assert!(s.p50() <= s.p90(), "p50 > p90 for {samples:?}");
                assert!(s.p90() <= s.p99(), "p90 > p99 for {samples:?}");
                assert!(s.p99() <= s.max, "p99 {} > max {}", s.p99(), s.max);
            },
        );
    }

    #[test]
    fn prop_merge_equals_concatenation() {
        // Generate one stream plus a split point: hist(a) ⊎ hist(b) must
        // equal hist(a ++ b) field-for-field.
        check(
            &Config::with_cases(128),
            "hist_merge_is_concat",
            &(vec_of(range_u64(0..u64::MAX), 0..96), range_usize(0..96)),
            |(samples, cut)| {
                let cut = (*cut).min(samples.len());
                let (a, b) = samples.split_at(cut);
                let merged = hist_of(a).merge(&hist_of(b));
                assert_eq!(merged, hist_of(samples));
            },
        );
    }

    #[test]
    fn prop_samples_land_in_their_bucket_bounds() {
        check(
            &Config::with_cases(256),
            "hist_bucket_containment",
            &range_u64(0..u64::MAX),
            |&v| {
                let (lo, hi) = bucket_bounds(bucket_of(v));
                assert!(lo <= v && v <= hi, "{v} outside [{lo}, {hi}]");
                // Recording exactly one sample puts it in exactly that
                // bucket and nowhere else.
                let s = hist_of(&[v]);
                assert_eq!(s.buckets[bucket_of(v)], 1);
                assert_eq!(s.buckets.iter().sum::<u64>(), 1);
                assert_eq!(s.percentile(100.0), v);
            },
        );
    }
}
