//! Per-thread virtual cycle clocks.
//!
//! Every modeled event in the workspace calls [`charge`], which advances the
//! current thread's virtual clock. When the thread is attached to a
//! [`sched::Gate`](crate::sched), crossing a quantum boundary synchronizes
//! with the other logical threads so that virtual time stays aligned across
//! the simulated machine.
//!
//! Threads that are *not* attached to a gate (unit tests, examples run
//! without the simulator) still accumulate cycles, which lets tests assert
//! cost properties directly.

use crate::cost::{self, CostKind};
use crate::sched::Gate;
use std::cell::{Cell, RefCell};
use std::sync::Arc;

struct ThreadCtx {
    clock: Cell<u64>,
    last_sync: Cell<u64>,
    lane: Cell<usize>,
    gate: RefCell<Option<Arc<Gate>>>,
}

thread_local! {
    static CTX: ThreadCtx = const {
        ThreadCtx {
            clock: Cell::new(0),
            last_sync: Cell::new(0),
            lane: Cell::new(0),
            gate: RefCell::new(None),
        }
    };
}

/// Charge one event from the cost table to the current thread's clock.
#[inline]
pub fn charge(kind: CostKind) {
    charge_cycles(cost::cycles(kind));
}

/// Charge `n` repetitions of one event.
#[inline]
pub fn charge_n(kind: CostKind, n: u64) {
    charge_cycles(cost::cycles(kind) * n);
}

/// Charge a raw cycle amount to the current thread's clock, synchronizing
/// with the gate scheduler if the quantum boundary is crossed.
///
/// Must not be called while holding simulation-machinery locks (pool/limbo
/// mutexes): the gate may block this thread until slower threads catch up,
/// and a blocked lock-holder would deadlock the virtual machine.
#[inline]
pub fn charge_cycles(c: u64) {
    CTX.with(|ctx| {
        let now = ctx.clock.get().saturating_add(c);
        ctx.clock.set(now);
        let gate = ctx.gate.borrow();
        if let Some(g) = gate.as_ref() {
            if now.wrapping_sub(ctx.last_sync.get()) >= g.quantum() {
                ctx.last_sync.set(now);
                g.sync(ctx.lane.get(), now);
            }
        }
    });
}

/// The current thread's virtual clock, in cycles.
#[inline]
pub fn now() -> u64 {
    CTX.with(|ctx| ctx.clock.get())
}

/// The gate lane the current thread is attached to, or `None` outside a
/// simulation (used by the tracer to label tracks).
pub fn current_lane() -> Option<usize> {
    CTX.with(|ctx| ctx.gate.borrow().as_ref().map(|_| ctx.lane.get()))
}

/// Reset the current thread's clock to zero (unit-test helper; also called
/// by the scheduler when a lane is attached).
pub fn reset() {
    CTX.with(|ctx| {
        ctx.clock.set(0);
        ctx.last_sync.set(0);
    });
}

/// Attach the current thread to a gate as logical lane `lane`.
/// Called by [`crate::Sim::run`]; resets the clock.
pub(crate) fn attach(gate: Arc<Gate>, lane: usize) {
    CTX.with(|ctx| {
        ctx.clock.set(0);
        ctx.last_sync.set(0);
        ctx.lane.set(lane);
        *ctx.gate.borrow_mut() = Some(gate);
    });
}

/// Detach the current thread from its gate, marking the lane finished and
/// returning the final clock value.
pub(crate) fn detach() -> u64 {
    CTX.with(|ctx| {
        let final_clock = ctx.clock.get();
        if let Some(g) = ctx.gate.borrow_mut().take() {
            g.finish(ctx.lane.get(), final_clock);
        }
        final_clock
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charges_accumulate() {
        reset();
        let t0 = now();
        charge(CostKind::Cas);
        charge(CostKind::Fence);
        assert_eq!(
            now() - t0,
            cost::cycles(CostKind::Cas) + cost::cycles(CostKind::Fence)
        );
    }

    #[test]
    fn charge_n_multiplies() {
        reset();
        charge_n(CostKind::SharedLoad, 7);
        assert_eq!(now(), 7 * cost::cycles(CostKind::SharedLoad));
    }

    #[test]
    fn reset_zeroes_the_clock() {
        charge(CostKind::PoolAlloc);
        reset();
        assert_eq!(now(), 0);
    }

    #[test]
    fn clocks_are_thread_local() {
        reset();
        charge(CostKind::Fence);
        let mine = now();
        let theirs = std::thread::spawn(|| {
            charge(CostKind::Cas);
            now()
        })
        .join()
        .unwrap();
        assert_eq!(mine, cost::cycles(CostKind::Fence));
        assert_eq!(theirs, cost::cycles(CostKind::Cas));
    }

    #[test]
    fn saturates_instead_of_wrapping() {
        reset();
        charge_cycles(u64::MAX - 5);
        charge_cycles(100);
        assert_eq!(now(), u64::MAX);
        reset();
    }
}
