//! Per-thread virtual cycle clocks.
//!
//! Every modeled event in the workspace calls [`charge`], which advances the
//! current thread's virtual clock. When the thread is attached to a
//! [`sched::Gate`](crate::sched), crossing a quantum boundary synchronizes
//! with the other logical threads so that virtual time stays aligned across
//! the simulated machine.
//!
//! Threads that are *not* attached to a gate (unit tests, examples run
//! without the simulator) still accumulate cycles, which lets tests assert
//! cost properties directly.
//!
//! `charge_cycles` is the single hottest wallclock path in the workspace
//! (every modeled load/store/CAS funnels through it), so the armed fast
//! path is a handful of thread-local `Cell` ops: add to the clock, compare
//! against a precomputed sync threshold. The gate is cached as a raw
//! pointer in a `Cell` (the owning `Arc` is parked in a `RefCell` beside
//! it purely as a keep-alive), and the quantum-crossing slow path is
//! outlined behind `#[cold]`. None of this changes *virtual* time: the
//! threshold test is equivalent to the original `now - last_sync >=
//! quantum` check, and gate synchronization never charges cycles.
//!
//! Cost-profile dispatch rides the same shape: a `Cell<*const u64>` holds
//! the lane's dense [`CostTable`](crate::cost::CostTable) while attached
//! to a non-default (NUMA remote) socket, and null otherwise. The null
//! path is the original const-fn [`cost::cycles`] lookup — detached
//! threads and every Haswell lane charge bit-identically to before the
//! profile existed.

use crate::cost::{self, CostKind};
use crate::sched::Gate;
use std::cell::{Cell, RefCell};
use std::sync::Arc;

struct ThreadCtx {
    clock: Cell<u64>,
    /// Clock value at which the next gate sync fires: `last_sync +
    /// quantum` while attached, `u64::MAX` while detached (so the fast
    /// path is one branch either way).
    next_sync: Cell<u64>,
    lane: Cell<usize>,
    /// Cached `&*gate_keep` — null while detached. Reading a `Cell<*const>`
    /// is what makes the armed fast path borrow-flag-free.
    gate: Cell<*const Gate>,
    /// Keep-alive for the pointer above; only touched on attach/detach.
    gate_keep: RefCell<Option<Arc<Gate>>>,
    /// First element of the lane's cost table — null means "use the
    /// default Haswell const fn". Tables are `'static`, so no keep-alive.
    table: Cell<*const u64>,
    /// Consecutive uncharged [`spin_wait_tick`] polls since the last
    /// charged one; paces the exact-scan backstop inside wait loops.
    wait_polls: Cell<u32>,
}

thread_local! {
    static CTX: ThreadCtx = const {
        ThreadCtx {
            clock: Cell::new(0),
            next_sync: Cell::new(u64::MAX),
            lane: Cell::new(0),
            gate: Cell::new(std::ptr::null()),
            gate_keep: RefCell::new(None),
            table: Cell::new(std::ptr::null()),
            wait_polls: Cell::new(0),
        }
    };
}

/// Cycle cost of `kind` on the current thread: the attached lane's cost
/// table if one is installed, else the default Haswell table.
#[inline]
fn kind_cycles(kind: CostKind) -> u64 {
    CTX.with(|ctx| {
        let t = ctx.table.get();
        if t.is_null() {
            cost::cycles(kind)
        } else {
            // SAFETY: `t` points at a `'static` `CostTable` installed by
            // `attach` (length `N_KINDS`); `kind as usize < N_KINDS` by
            // construction (asserted over `ALL_KINDS` in cost tests).
            unsafe { *t.add(kind as usize) }
        }
    })
}

/// Charge one event from the cost table to the current thread's clock.
#[inline]
pub fn charge(kind: CostKind) {
    charge_cycles(kind_cycles(kind));
}

/// Charge `n` repetitions of one event. Saturates (like `charge_cycles`)
/// instead of wrapping when `cycles × n` overflows.
#[inline]
pub fn charge_n(kind: CostKind, n: u64) {
    charge_cycles(kind_cycles(kind).saturating_mul(n));
}

/// Charge a raw cycle amount to the current thread's clock, synchronizing
/// with the gate scheduler if the quantum boundary is crossed.
///
/// Must not be called while holding simulation-machinery locks (pool/limbo
/// mutexes): the gate may block this thread until slower threads catch up,
/// and a blocked lock-holder would deadlock the virtual machine.
#[inline]
pub fn charge_cycles(c: u64) {
    CTX.with(|ctx| {
        let now = ctx.clock.get().saturating_add(c);
        ctx.clock.set(now);
        if now >= ctx.next_sync.get() {
            gate_cross(ctx, now);
        }
    });
}

/// Quantum-crossing slow path: publish the clock and (maybe) block for
/// stragglers. Cold and never inlined so the fast path stays tiny.
#[cold]
#[inline(never)]
fn gate_cross(ctx: &ThreadCtx, now: u64) {
    let g = ctx.gate.get();
    if g.is_null() {
        // Detached: `next_sync` is u64::MAX, reachable only when the
        // clock itself saturated. Nothing to sync with.
        return;
    }
    // SAFETY: `g` points at the `Gate` owned by `gate_keep`, which is only
    // cleared (and the pointer nulled first) in `detach`; the Arc outlives
    // every dereference here.
    let gate = unsafe { &*g };
    ctx.next_sync.set(now.saturating_add(gate.quantum()));
    gate.sync(ctx.lane.get(), now);
}

/// One iteration of a physical spin-wait on a resource another lane holds
/// — a composed-fallback anchor, an orec locked mid-commit, an empty work
/// queue a producer lane has yet to fill.
///
/// The virtual-time rule: **a wait costs the virtual duration of the
/// wait, not one charge per time the OS scheduled the poll loop.** A
/// waiter that charged a `SpinIter` on every physical iteration (the
/// pre-PR 10 behavior) leaks wallclock scheduling into virtual time: the
/// same seed produces different makespans run to run, and two lanes
/// waiting on each other ratchet both clocks upward by a quantum per gate
/// park, inflating a 100-op contended run into *billions* of virtual
/// cycles. Instead, the tick charges a `SpinIter` only while this lane
/// sits at the gate's published minimum — the minimum lane must keep
/// virtual time flowing, or a holder parked ahead of it would never be
/// released to finish its critical section — and otherwise publishes its
/// clock and yields uncharged, letting the stragglers run. The total
/// charged this way is bounded by (clock gap to the holder) + (the
/// holder's remaining critical section), which is exactly what an
/// 8-thread machine's spinner would burn in that window.
///
/// Every 64th uncharged poll runs the gate's exact-min backstop: the
/// cheap root bound is a conservative (stale-low) estimate, and a waiter
/// that trusted a stale bound while actually *being* the minimum would
/// freeze virtual time for the whole machine.
///
/// Threads not attached to a gate charge a plain `SpinIter` per call —
/// with no peers or gate, the per-iteration model is the only cost
/// available, and unit tests assert against it.
pub fn spin_wait_tick() {
    let must_charge = CTX.with(|ctx| {
        let g = ctx.gate.get();
        if g.is_null() {
            return true;
        }
        // SAFETY: see `gate_cross`.
        let gate = unsafe { &*g };
        let now = ctx.clock.get();
        // Publish first (parking if this waiter is itself too far
        // ahead): an unpublished quantum of charges could leave this
        // lane pinned as everyone else's stale minimum.
        gate.sync(ctx.lane.get(), now);
        if now <= gate.root_bound() {
            ctx.wait_polls.set(0);
            return true;
        }
        let polls = ctx.wait_polls.get().wrapping_add(1);
        ctx.wait_polls.set(polls);
        if polls.is_multiple_of(64) && now <= gate.exact_min_and_publish() {
            ctx.wait_polls.set(0);
            return true;
        }
        false
    });
    if must_charge {
        charge(CostKind::SpinIter);
    } else {
        std::thread::yield_now();
    }
}

/// The current thread's virtual clock, in cycles.
#[inline]
pub fn now() -> u64 {
    CTX.with(|ctx| ctx.clock.get())
}

/// True when the calling thread is a simulator lane charged a non-default
/// (remote-socket) cost table — i.e. it models a thread off socket 0 under
/// [`CostProfile::NumaIsh`](crate::cost::CostProfile). Socket-0 lanes and
/// unattached threads return `false`. Consumers use this to tag events
/// (commits, aborts) by locality without threading the profile through.
#[inline]
pub fn on_remote_socket() -> bool {
    CTX.with(|ctx| !ctx.table.get().is_null())
}

/// The gate lane the current thread is attached to, or `None` outside a
/// simulation (used by the tracer to label tracks).
pub fn current_lane() -> Option<usize> {
    CTX.with(|ctx| {
        if ctx.gate.get().is_null() {
            None
        } else {
            Some(ctx.lane.get())
        }
    })
}

/// Reset the current thread's clock to zero (unit-test helper; also called
/// by the scheduler when a lane is attached).
pub fn reset() {
    CTX.with(|ctx| {
        ctx.clock.set(0);
        let g = ctx.gate.get();
        ctx.next_sync.set(if g.is_null() {
            u64::MAX
        } else {
            // SAFETY: see `gate_cross`.
            unsafe { (*g).quantum() }
        });
    });
}

/// Attach the current thread to a gate as logical lane `lane`.
/// Called by [`crate::Sim::run`]; resets the clock.
pub(crate) fn attach(gate: Arc<Gate>, lane: usize) {
    CTX.with(|ctx| {
        ctx.clock.set(0);
        ctx.next_sync.set(gate.quantum());
        ctx.lane.set(lane);
        ctx.table.set(match gate.profile().table_for(lane) {
            Some(t) => t.as_ptr(),
            None => std::ptr::null(),
        });
        ctx.gate.set(Arc::as_ptr(&gate));
        *ctx.gate_keep.borrow_mut() = Some(gate);
    });
}

/// Detach the current thread from its gate, marking the lane finished and
/// returning the final clock value.
pub(crate) fn detach() -> u64 {
    CTX.with(|ctx| {
        let final_clock = ctx.clock.get();
        ctx.gate.set(std::ptr::null());
        ctx.table.set(std::ptr::null());
        ctx.next_sync.set(u64::MAX);
        if let Some(g) = ctx.gate_keep.borrow_mut().take() {
            g.finish(ctx.lane.get(), final_clock);
        }
        final_clock
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charges_accumulate() {
        reset();
        let t0 = now();
        charge(CostKind::Cas);
        charge(CostKind::Fence);
        assert_eq!(
            now() - t0,
            cost::cycles(CostKind::Cas) + cost::cycles(CostKind::Fence)
        );
    }

    #[test]
    fn charge_n_multiplies() {
        reset();
        charge_n(CostKind::SharedLoad, 7);
        assert_eq!(now(), 7 * cost::cycles(CostKind::SharedLoad));
    }

    #[test]
    fn reset_zeroes_the_clock() {
        charge(CostKind::PoolAlloc);
        reset();
        assert_eq!(now(), 0);
    }

    #[test]
    fn clocks_are_thread_local() {
        reset();
        charge(CostKind::Fence);
        let mine = now();
        let theirs = std::thread::spawn(|| {
            charge(CostKind::Cas);
            now()
        })
        .join()
        .unwrap();
        assert_eq!(mine, cost::cycles(CostKind::Fence));
        assert_eq!(theirs, cost::cycles(CostKind::Cas));
    }

    #[test]
    fn saturates_instead_of_wrapping() {
        reset();
        charge_cycles(u64::MAX - 5);
        charge_cycles(100);
        assert_eq!(now(), u64::MAX);
        reset();
    }

    #[test]
    fn charge_n_saturates_instead_of_wrapping() {
        // Regression: `cycles(kind) * n` used a plain multiply, so a large
        // `n` wrapped the product and could *rewind* nothing but still
        // charge a tiny amount; the contract is saturation, matching
        // `charge_cycles`.
        reset();
        charge_n(CostKind::SharedLoad, u64::MAX);
        assert_eq!(now(), u64::MAX);
        reset();
        // A follow-up charge after saturation stays saturated.
        charge_n(CostKind::Cas, u64::MAX / 2);
        charge_n(CostKind::Cas, u64::MAX / 2);
        charge_n(CostKind::Cas, u64::MAX / 2);
        assert_eq!(now(), u64::MAX);
        reset();
    }
}
