//! Thin `parking_lot`-style wrappers over `std::sync` primitives.
//!
//! The workspace previously used `parking_lot` for its non-poisoning,
//! guard-returning `lock()` and its `Condvar::wait(&mut guard)` signature.
//! These shims preserve that API surface over the standard library so the
//! default build has zero external dependencies:
//!
//! * [`Mutex::lock`] returns the guard directly; a poisoned mutex is
//!   recovered rather than propagated (a panicking lane under the gate
//!   scheduler already aborts the test — poisoning adds no information).
//! * [`Condvar::wait`] takes `&mut MutexGuard` and re-acquires in place,
//!   matching the parking_lot calling convention used by the gate
//!   scheduler's quantum-wait loop.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::{self, PoisonError};

/// Mutual exclusion with a `parking_lot`-style `lock() -> guard` API.
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the mutex, recovering from poisoning.
    #[inline]
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            // Poison recovery: a panicked holder leaves the data as-is.
            inner: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)),
        }
    }

    /// Try to acquire without blocking; `None` if currently held.
    #[inline]
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(sync::TryLockError::Poisoned(e)) => Some(MutexGuard {
                inner: Some(e.into_inner()),
            }),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

/// Guard for [`Mutex`]. The inner `Option` is only ever `None` transiently
/// inside [`Condvar::wait`], where the std guard must be moved out by value.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;

    #[inline]
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard taken during wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    #[inline]
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard taken during wait")
    }
}

/// Condition variable with the `wait(&mut guard)` calling convention.
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    pub const fn new() -> Self {
        Condvar {
            inner: sync::Condvar::new(),
        }
    }

    /// Atomically release the guard's mutex and block until notified; the
    /// mutex is re-acquired (in place) before returning.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.inner.take().expect("guard taken during wait");
        let g = self.inner.wait(g).unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(g);
    }

    #[inline]
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    #[inline]
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Condvar::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    #[test]
    fn lock_guards_mutation() {
        let m = Mutex::new(0u64);
        *m.lock() += 5;
        assert_eq!(*m.lock(), 5);
        assert_eq!(m.into_inner(), 5);
    }

    #[test]
    fn try_lock_reports_contention() {
        let m = Mutex::new(());
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn lock_recovers_from_poison() {
        let m = Arc::new(Mutex::new(7u64));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison the mutex");
        })
        .join();
        assert_eq!(*m.lock(), 7);
    }

    #[test]
    fn condvar_wait_notify_round_trip() {
        let state = Arc::new((Mutex::new(false), Condvar::new()));
        let flag = Arc::new(AtomicBool::new(false));
        let (s2, f2) = (Arc::clone(&state), Arc::clone(&flag));
        let waiter = std::thread::spawn(move || {
            let (m, cv) = &*s2;
            let mut g = m.lock();
            while !*g {
                cv.wait(&mut g);
            }
            f2.store(true, Ordering::SeqCst);
        });
        {
            let (m, cv) = &*state;
            let mut g = m.lock();
            *g = true;
            cv.notify_all();
        }
        waiter.join().unwrap();
        assert!(flag.load(Ordering::SeqCst));
    }
}
