//! proptest-lite: a small in-tree property-testing harness.
//!
//! Replaces the `proptest` crate in this workspace so the default build is
//! hermetic (zero crates-io dependencies). It keeps the three properties the
//! differential-oracle suites actually rely on:
//!
//! 1. **Strategy-style generators** for integers, vectors, tuples, options
//!    and (via [`Strategy::map`] + [`one_of`]) enums of operations.
//! 2. **Seeded, reproducible runs**: generation is driven by the workspace
//!    [`XorShift64`](crate::rng::XorShift64) PRNG from a fixed default seed;
//!    the seed and failing case index are printed on failure and can be
//!    overridden with `PTO_PROPTEST_SEED`.
//! 3. **Greedy shrinking**: on failure the harness walks a lazy shrink tree
//!    (integers binary-search toward their lower bound, vectors drop chunks
//!    then single elements then shrink elements in place) and reports the
//!    smallest counterexample it can still make fail.
//!
//! Environment overrides:
//!
//! * `PTO_PROPTEST_CASES` — cases per property (default 64).
//! * `PTO_PROPTEST_SEED` — base seed, decimal or `0x…` hex.
//! * `PTO_PROPTEST_MAX_SHRINK` — shrink-evaluation budget (default 4096).

use crate::rng::XorShift64;
use std::fmt::Debug;
use std::ops::Range;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::rc::Rc;

// ---------------------------------------------------------------------------
// Shrinkable value trees
// ---------------------------------------------------------------------------

/// A generated value plus a lazy enumeration of simpler candidates.
///
/// Mirrors proptest's `ValueTree`: shrink candidates are themselves
/// [`Shrinkable`], so the runner can descend greedily — take the first
/// candidate that still fails, re-enumerate from there, repeat.
pub struct Shrinkable<V> {
    /// The concrete generated value.
    pub value: V,
    shrink: Rc<dyn Fn() -> Vec<Shrinkable<V>>>,
}

impl<V: Clone> Clone for Shrinkable<V> {
    fn clone(&self) -> Self {
        Shrinkable {
            value: self.value.clone(),
            shrink: Rc::clone(&self.shrink),
        }
    }
}

impl<V> Shrinkable<V> {
    /// A value with no simpler forms.
    pub fn leaf(value: V) -> Self
    where
        V: 'static,
    {
        Shrinkable {
            value,
            shrink: Rc::new(Vec::new),
        }
    }

    /// A value whose shrink candidates are produced on demand by `shrink`.
    pub fn new(value: V, shrink: impl Fn() -> Vec<Shrinkable<V>> + 'static) -> Self {
        Shrinkable {
            value,
            shrink: Rc::new(shrink),
        }
    }

    /// Enumerate simpler candidates, most aggressive first.
    pub fn shrinks(&self) -> Vec<Shrinkable<V>> {
        (self.shrink)()
    }
}

// ---------------------------------------------------------------------------
// Strategy trait and combinators
// ---------------------------------------------------------------------------

/// A recipe for generating shrinkable values of one type.
pub trait Strategy {
    type Value: Clone + Debug + 'static;

    /// Draw one value tree from `rng`.
    fn generate(&self, rng: &mut XorShift64) -> Shrinkable<Self::Value>;

    /// Transform generated values; shrinking happens on the *source* values
    /// and is re-mapped, so mapped enums shrink through their payloads.
    fn map<U, F>(self, f: F) -> Map<Self, U>
    where
        Self: Sized,
        U: Clone + Debug + 'static,
        F: Fn(Self::Value) -> U + 'static,
    {
        Map {
            inner: self,
            f: Rc::new(f),
        }
    }

    /// Type-erase for heterogeneous collections ([`one_of`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Rc::new(self)
    }
}

/// A reference-counted, type-erased strategy.
pub type BoxedStrategy<V> = Rc<dyn Strategy<Value = V>>;

impl<V: Clone + Debug + 'static> Strategy for BoxedStrategy<V> {
    type Value = V;

    fn generate(&self, rng: &mut XorShift64) -> Shrinkable<V> {
        (**self).generate(rng)
    }
}

/// Always produces `value`; never shrinks.
pub fn just<V: Clone + Debug + 'static>(value: V) -> Just<V> {
    Just(value)
}

pub struct Just<V>(V);

impl<V: Clone + Debug + 'static> Strategy for Just<V> {
    type Value = V;

    fn generate(&self, _rng: &mut XorShift64) -> Shrinkable<V> {
        Shrinkable::leaf(self.0.clone())
    }
}

/// Uniform `u64` in `[range.start, range.end)`, shrinking toward the start.
pub fn range_u64(range: Range<u64>) -> RangeU64 {
    assert!(range.start < range.end, "empty range");
    RangeU64 { range }
}

pub struct RangeU64 {
    range: Range<u64>,
}

impl Strategy for RangeU64 {
    type Value = u64;

    fn generate(&self, rng: &mut XorShift64) -> Shrinkable<u64> {
        let v = self.range.start + rng.below(self.range.end - self.range.start);
        int_tree(v, self.range.start)
    }
}

/// Binary-search descent toward `lo`. The `v - 1` candidate carries floor
/// `mid`: the greedy runner only reaches it after `lo` and `mid` passed, so
/// the next level can bisect `(mid, v-1]` instead of re-testing from `lo`.
/// Convergence to the exact failure boundary is O(log range).
fn int_tree(v: u64, lo: u64) -> Shrinkable<u64> {
    Shrinkable::new(v, move || {
        let mut out = Vec::new();
        if v > lo {
            out.push(int_tree(lo, lo));
            let mid = lo + (v - lo) / 2;
            if mid != lo && mid != v {
                out.push(int_tree(mid, lo));
            }
            if v - 1 > mid {
                out.push(int_tree(v - 1, mid));
            }
        }
        out
    })
}

/// Uniform `usize` in `[range.start, range.end)`, shrinking toward the start.
pub fn range_usize(range: Range<usize>) -> Map<RangeU64, usize> {
    range_u64(range.start as u64..range.end as u64).map(|v| v as usize)
}

/// Uniform `u32` in `[range.start, range.end)`, shrinking toward the start.
pub fn range_u32(range: Range<u32>) -> Map<RangeU64, u32> {
    range_u64(range.start as u64..range.end as u64).map(|v| v as u32)
}

pub struct Map<S: Strategy, U> {
    inner: S,
    f: Rc<dyn Fn(S::Value) -> U>,
}

impl<S: Strategy, U: Clone + Debug + 'static> Strategy for Map<S, U> {
    type Value = U;

    fn generate(&self, rng: &mut XorShift64) -> Shrinkable<U> {
        map_tree(self.inner.generate(rng), Rc::clone(&self.f))
    }
}

fn map_tree<T: Clone + Debug + 'static, U: Clone + Debug + 'static>(
    tree: Shrinkable<T>,
    f: Rc<dyn Fn(T) -> U>,
) -> Shrinkable<U> {
    let value = f(tree.value.clone());
    Shrinkable::new(value, move || {
        tree.shrinks()
            .into_iter()
            .map(|c| map_tree(c, Rc::clone(&f)))
            .collect()
    })
}

/// Pick uniformly among `options` (the `prop_oneof!` replacement); shrinking
/// stays within the chosen branch.
pub fn one_of<V: Clone + Debug + 'static>(options: Vec<BoxedStrategy<V>>) -> OneOf<V> {
    assert!(!options.is_empty(), "one_of needs at least one option");
    OneOf { options }
}

pub struct OneOf<V> {
    options: Vec<BoxedStrategy<V>>,
}

impl<V: Clone + Debug + 'static> Strategy for OneOf<V> {
    type Value = V;

    fn generate(&self, rng: &mut XorShift64) -> Shrinkable<V> {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].generate(rng)
    }
}

/// `None` one time in four, otherwise `Some(inner)`; `Some` shrinks to
/// `None` first, then through the payload.
pub fn option_of<S: Strategy>(inner: S) -> OptionOf<S> {
    OptionOf { inner }
}

pub struct OptionOf<S> {
    inner: S,
}

impl<S: Strategy> Strategy for OptionOf<S> {
    type Value = Option<S::Value>;

    fn generate(&self, rng: &mut XorShift64) -> Shrinkable<Option<S::Value>> {
        if rng.chance(1, 4) {
            Shrinkable::leaf(None)
        } else {
            option_tree(self.inner.generate(rng))
        }
    }
}

fn option_tree<T: Clone + Debug + 'static>(t: Shrinkable<T>) -> Shrinkable<Option<T>> {
    let value = Some(t.value.clone());
    Shrinkable::new(value, move || {
        let mut out = vec![Shrinkable::leaf(None)];
        out.extend(t.shrinks().into_iter().map(option_tree));
        out
    })
}

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);

    fn generate(&self, rng: &mut XorShift64) -> Shrinkable<Self::Value> {
        pair_tree(self.0.generate(rng), self.1.generate(rng))
    }
}

fn pair_tree<A: Clone + Debug + 'static, B: Clone + Debug + 'static>(
    a: Shrinkable<A>,
    b: Shrinkable<B>,
) -> Shrinkable<(A, B)> {
    let value = (a.value.clone(), b.value.clone());
    Shrinkable::new(value, move || {
        let mut out: Vec<_> = a
            .shrinks()
            .into_iter()
            .map(|ca| pair_tree(ca, b.clone()))
            .collect();
        out.extend(b.shrinks().into_iter().map(|cb| pair_tree(a.clone(), cb)));
        out
    })
}

/// Vector of `elem` draws with length in `[len.start, len.end)`. Shrinks by
/// dropping chunks (largest first, down to `len.start` elements), then by
/// shrinking individual elements in place.
pub fn vec_of<S: Strategy>(elem: S, len: Range<usize>) -> VecOf<S> {
    assert!(len.start < len.end, "empty length range");
    VecOf { elem, len }
}

pub struct VecOf<S> {
    elem: S,
    len: Range<usize>,
}

impl<S: Strategy> Strategy for VecOf<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut XorShift64) -> Shrinkable<Vec<S::Value>> {
        let n = self.len.start
            + rng.below((self.len.end - self.len.start) as u64) as usize;
        let elems: Vec<_> = (0..n).map(|_| self.elem.generate(rng)).collect();
        vec_tree(Rc::new(elems), self.len.start)
    }
}

fn vec_tree<T: Clone + Debug + 'static>(
    elems: Rc<Vec<Shrinkable<T>>>,
    min_len: usize,
) -> Shrinkable<Vec<T>> {
    let value: Vec<T> = elems.iter().map(|e| e.value.clone()).collect();
    Shrinkable::new(value, move || {
        let n = elems.len();
        let mut out = Vec::new();
        if n > min_len {
            // Chunk removals, most aggressive (everything removable) first.
            let mut chunk = n - min_len;
            loop {
                let mut start = 0;
                while start + chunk <= n {
                    let mut rest = Vec::with_capacity(n - chunk);
                    rest.extend_from_slice(&elems[..start]);
                    rest.extend_from_slice(&elems[start + chunk..]);
                    out.push(vec_tree(Rc::new(rest), min_len));
                    start += chunk;
                }
                if chunk == 1 {
                    break;
                }
                chunk /= 2;
            }
        }
        // Per-element shrinks.
        for i in 0..n {
            for cand in elems[i].shrinks() {
                let mut copy = (*elems).clone();
                copy[i] = cand;
                out.push(vec_tree(Rc::new(copy), min_len));
            }
        }
        out
    })
}

// ---------------------------------------------------------------------------
// Runner
// ---------------------------------------------------------------------------

/// Runner configuration; see the module docs for the env overrides.
#[derive(Clone, Copy, Debug)]
pub struct Config {
    /// Cases generated per property.
    pub cases: u32,
    /// Base PRNG seed; the whole run is a deterministic function of it.
    pub seed: u64,
    /// Max property evaluations spent shrinking one failure.
    pub max_shrink_evals: u32,
}

/// Default base seed: runs are reproducible without any env setup.
pub const DEFAULT_SEED: u64 = 0x5EED_CAFE_F00D_0001;

impl Default for Config {
    fn default() -> Self {
        Config {
            cases: 64,
            seed: DEFAULT_SEED,
            max_shrink_evals: 4096,
        }
    }
}

impl Config {
    /// Defaults overridden by `PTO_PROPTEST_{CASES,SEED,MAX_SHRINK}`.
    pub fn from_env() -> Self {
        let mut cfg = Config::default();
        if let Some(v) = env_u64("PTO_PROPTEST_CASES") {
            cfg.cases = v as u32;
        }
        if let Some(v) = env_u64("PTO_PROPTEST_SEED") {
            cfg.seed = v;
        }
        if let Some(v) = env_u64("PTO_PROPTEST_MAX_SHRINK") {
            cfg.max_shrink_evals = v as u32;
        }
        cfg
    }

    /// `from_env`, but with a different default case count (env still wins).
    pub fn with_cases(cases: u32) -> Self {
        let mut cfg = Config::from_env();
        if std::env::var_os("PTO_PROPTEST_CASES").is_none() {
            cfg.cases = cases;
        }
        cfg
    }
}

fn env_u64(key: &str) -> Option<u64> {
    parse_u64(&std::env::var(key).ok()?)
}

fn parse_u64(s: &str) -> Option<u64> {
    let s = s.trim();
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u64::from_str_radix(&hex.replace('_', ""), 16).ok()
    } else {
        s.replace('_', "").parse().ok()
    }
}

/// Run `prop` (which signals failure by panicking, e.g. via `assert!`)
/// against `cases` draws from `strategy`. On failure, shrink greedily and
/// panic with the minimal counterexample, the seed, and the case index.
pub fn check<S: Strategy>(
    cfg: &Config,
    name: &str,
    strategy: &S,
    prop: impl Fn(&S::Value),
) {
    let mut rng = XorShift64::new(cfg.seed);
    for case in 0..cfg.cases {
        let tree = strategy.generate(&mut rng);
        if let Err(msg) = eval(&prop, &tree.value) {
            let (minimal, evals) = minimize(tree, &prop, cfg.max_shrink_evals);
            panic!(
                "proptest-lite: property '{name}' failed at case {case}/{cases} \
                 (seed=0x{seed:016x}; rerun with PTO_PROPTEST_SEED=0x{seed:x})\n\
                 minimal counterexample after {evals} shrink evals:\n  {min:?}\n\
                 original failure: {msg}",
                cases = cfg.cases,
                seed = cfg.seed,
                min = minimal.value,
            );
        }
    }
}

/// One guarded property evaluation; `Err` carries the panic message.
fn eval<V>(prop: &impl Fn(&V), value: &V) -> Result<(), String> {
    match catch_unwind(AssertUnwindSafe(|| prop(value))) {
        Ok(()) => Ok(()),
        Err(payload) => Err(payload
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
            .unwrap_or_else(|| "<non-string panic payload>".into())),
    }
}

/// Greedy descent: repeatedly move to the first shrink candidate that still
/// fails, until no candidate fails or the evaluation budget runs out.
/// Exposed so the shrinker itself can be meta-tested.
pub fn minimize<V: Clone + Debug>(
    mut current: Shrinkable<V>,
    prop: &impl Fn(&V),
    budget: u32,
) -> (Shrinkable<V>, u32) {
    let mut evals = 0u32;
    'descend: loop {
        for cand in current.shrinks() {
            if evals >= budget {
                break 'descend;
            }
            evals += 1;
            if eval(prop, &cand.value).is_err() {
                current = cand;
                continue 'descend;
            }
        }
        break;
    }
    (current, evals)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_for_fixed_seed() {
        let s = vec_of(range_u64(0..1000), 1..50);
        let a: Vec<Vec<u64>> = {
            let mut rng = XorShift64::new(77);
            (0..10).map(|_| s.generate(&mut rng).value).collect()
        };
        let b: Vec<Vec<u64>> = {
            let mut rng = XorShift64::new(77);
            (0..10).map(|_| s.generate(&mut rng).value).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn int_shrink_finds_exact_boundary() {
        // Property: v < 500. The shrinker must find exactly 500, the
        // smallest failing value, via binary descent — not just "something
        // smaller".
        let mut rng = XorShift64::new(1);
        let s = range_u64(0..100_000);
        let prop = |v: &u64| assert!(*v < 500);
        let mut checked = 0;
        loop {
            let tree = s.generate(&mut rng);
            if tree.value >= 500 {
                let (min, evals) = minimize(tree, &prop, 4096);
                assert_eq!(min.value, 500);
                // O(log range), not a linear walk.
                assert!(evals < 200, "took {evals} evals");
                checked += 1;
                if checked == 5 {
                    break;
                }
            }
        }
    }

    #[test]
    fn vec_shrink_reduces_to_minimal_counterexample() {
        // Property fails iff the vec contains an element >= 500. Minimal
        // counterexample is the single vec [500].
        let s = vec_of(range_u64(0..1000), 0..40);
        let prop = |v: &Vec<u64>| assert!(v.iter().all(|&x| x < 500));
        let mut rng = XorShift64::new(3);
        let mut shrunk = 0;
        while shrunk < 5 {
            let tree = s.generate(&mut rng);
            if prop_fails(&prop, &tree.value) {
                let (min, _) = minimize(tree, &prop, 4096);
                assert_eq!(min.value, vec![500]);
                shrunk += 1;
            }
        }
    }

    #[test]
    fn mapped_enum_shrinks_through_payload() {
        #[derive(Clone, Debug, PartialEq)]
        enum Op {
            A(u64),
            B(u64),
        }
        let s = vec_of(
            one_of(vec![
                range_u64(0..1000).map(Op::A).boxed(),
                range_u64(0..1000).map(Op::B).boxed(),
            ]),
            0..30,
        );
        // Fails iff some B has payload >= 100; minimal case is [B(100)].
        let prop = |v: &Vec<Op>| {
            assert!(v.iter().all(|op| !matches!(op, Op::B(x) if *x >= 100)));
        };
        let mut rng = XorShift64::new(9);
        let mut shrunk = 0;
        while shrunk < 3 {
            let tree = s.generate(&mut rng);
            if prop_fails(&prop, &tree.value) {
                let (min, _) = minimize(tree, &prop, 8192);
                assert_eq!(min.value, vec![Op::B(100)]);
                shrunk += 1;
            }
        }
    }

    #[test]
    fn option_and_tuple_strategies_generate_in_bounds() {
        let s = vec_of(option_of((range_usize(0..16), range_u64(0..1000))), 1..24);
        let mut rng = XorShift64::new(11);
        let mut saw_none = false;
        let mut saw_some = false;
        for _ in 0..50 {
            for v in s.generate(&mut rng).value {
                match v {
                    None => saw_none = true,
                    Some((slot, val)) => {
                        saw_some = true;
                        assert!(slot < 16 && val < 1000);
                    }
                }
            }
        }
        assert!(saw_none && saw_some);
    }

    #[test]
    fn vec_respects_min_len_when_shrinking() {
        let s = vec_of(range_u64(0..10), 3..20);
        // Always fails: the shrinker must stop at the 3-element floor.
        let prop = |_: &Vec<u64>| panic!("always fails");
        let mut rng = XorShift64::new(4);
        let tree = s.generate(&mut rng);
        let (min, _) = minimize(tree, &prop, 2048);
        assert_eq!(min.value.len(), 3);
        assert!(min.value.iter().all(|&x| x == 0));
    }

    #[test]
    fn seed_parsing_accepts_decimal_and_hex() {
        assert_eq!(parse_u64("123"), Some(123));
        assert_eq!(parse_u64("0xff"), Some(255));
        assert_eq!(parse_u64("0x5EED_CAFE_F00D_0001"), Some(DEFAULT_SEED));
        assert_eq!(parse_u64(" 42 "), Some(42));
        assert_eq!(parse_u64("nope"), None);
    }

    #[test]
    fn check_passes_a_trivially_true_property() {
        let cfg = Config {
            cases: 64,
            seed: 123,
            max_shrink_evals: 64,
        };
        check(&cfg, "sum_is_bounded", &vec_of(range_u64(0..10), 0..10), |v| {
            assert!(v.iter().sum::<u64>() <= 90);
        });
    }

    #[test]
    fn check_reports_seed_and_minimal_case_on_failure() {
        let cfg = Config {
            cases: 64,
            seed: 99,
            max_shrink_evals: 4096,
        };
        let r = std::panic::catch_unwind(|| {
            check(&cfg, "doomed", &vec_of(range_u64(0..1000), 0..40), |v| {
                assert!(v.iter().all(|&x| x < 500));
            });
        });
        let msg = match r {
            Err(p) => p
                .downcast_ref::<String>()
                .cloned()
                .expect("panic message is a String"),
            Ok(()) => panic!("property unexpectedly passed"),
        };
        assert!(msg.contains("seed=0x0000000000000063"), "msg: {msg}");
        assert!(msg.contains("PTO_PROPTEST_SEED"), "msg: {msg}");
        assert!(msg.contains("[500]"), "msg: {msg}");
    }

    fn prop_fails<V>(prop: &impl Fn(&V), v: &V) -> bool {
        eval(prop, v).is_err()
    }
}
