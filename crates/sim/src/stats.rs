//! Cache-padded atomic counters for throughput and event statistics.

use crate::pad::CachePadded;
use std::sync::atomic::{AtomicU64, Ordering};

/// A monotonically increasing event counter, padded to its own cache line so
/// that hot counters on different subsystems do not false-share.
#[derive(Default)]
pub struct Counter(CachePadded<AtomicU64>);

impl Counter {
    pub const fn new() -> Self {
        Counter(CachePadded::new(AtomicU64::new(0)))
    }

    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    pub fn reset(&self) {
        self.0.store(0, Ordering::Relaxed);
    }
}

impl std::fmt::Debug for Counter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Counter({})", self.get())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_and_resets() {
        let c = Counter::new();
        c.inc();
        c.add(9);
        assert_eq!(c.get(), 10);
        c.reset();
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn concurrent_increments_are_not_lost() {
        let c = Counter::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..10_000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.get(), 40_000);
    }
}
