//! A minimal JSON reader for the in-tree trace validator.
//!
//! The workspace is hermetic (no serde), but `ci/premerge.sh` needs to
//! structurally check the Chrome trace-event JSON that
//! [`trace`](crate::trace) exports. This is a small recursive-descent
//! parser for the JSON subset that export produces: objects, arrays,
//! strings (with the standard escapes), numbers, booleans and null. It is
//! a *reader*, not a general-purpose JSON library — errors carry a byte
//! offset and a short message, nothing more.

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    /// All JSON numbers are read as `f64` (trace timestamps fit: they are
    /// virtual cycles well below 2^53).
    Num(f64),
    Str(String),
    Arr(Vec<Value>),
    /// Insertion-ordered key/value pairs (duplicate keys keep the first).
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Parse a complete JSON document; trailing non-whitespace is an error.
    pub fn parse(text: &str) -> Result<Value, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing data after JSON value"));
        }
        Ok(v)
    }

    /// Object member lookup (first match); `None` on non-objects.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> String {
        format!("json error at byte {}: {msg}", self.pos)
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(self.err(&format!("unexpected byte '{}'", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if matches!(b, b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| self.err(&format!("bad number '{text}'")))
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("dangling escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not produced by the
                            // exporter; map lone surrogates to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => {
                    // Copy a run of plain bytes (UTF-8 passes through
                    // unchanged; the input is a &str so it is valid).
                    let start = self.pos;
                    while let Some(b) = self.peek() {
                        if b == b'"' || b == b'\\' {
                            break;
                        }
                        self.pos += 1;
                    }
                    out.push_str(std::str::from_utf8(&self.bytes[start..self.pos]).unwrap());
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.eat(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let val = self.value()?;
            members.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(members));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

/// Escape a string for embedding in JSON output (used by the exporter).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(Value::parse("null").unwrap(), Value::Null);
        assert_eq!(Value::parse("true").unwrap(), Value::Bool(true));
        assert_eq!(Value::parse("false").unwrap(), Value::Bool(false));
        assert_eq!(Value::parse("42").unwrap(), Value::Num(42.0));
        assert_eq!(Value::parse("-3.5e2").unwrap(), Value::Num(-350.0));
        assert_eq!(Value::parse("\"hi\"").unwrap(), Value::Str("hi".into()));
    }

    #[test]
    fn parses_nested_structures() {
        let v = Value::parse(r#"{"a":[1,2,{"b":"c"}],"d":null}"#).unwrap();
        let arr = v.get("a").unwrap().as_arr().unwrap();
        assert_eq!(arr.len(), 3);
        assert_eq!(arr[2].get("b").unwrap().as_str(), Some("c"));
        assert_eq!(v.get("d"), Some(&Value::Null));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn parses_escapes() {
        let v = Value::parse(r#""a\"b\\c\nd\u0041""#).unwrap();
        assert_eq!(v.as_str(), Some("a\"b\\c\ndA"));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(Value::parse("").is_err());
        assert!(Value::parse("{").is_err());
        assert!(Value::parse("[1,]").is_err());
        assert!(Value::parse("{\"a\" 1}").is_err());
        assert!(Value::parse("42 trailing").is_err());
        assert!(Value::parse("\"open").is_err());
    }

    #[test]
    fn escape_round_trips_through_parse() {
        let raw = "line1\nline\"2\"\\tab\there";
        let json = format!("\"{}\"", escape(raw));
        assert_eq!(Value::parse(&json).unwrap().as_str(), Some(raw));
    }

    #[test]
    fn whitespace_is_insignificant() {
        let a = Value::parse(r#"{"x": [1 , 2]}"#).unwrap();
        let b = Value::parse("{\"x\":[1,2]}").unwrap();
        assert_eq!(a, b);
    }
}
