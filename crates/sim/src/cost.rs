//! Calibrated cycle cost tables: the paper's Haswell testbed, plus a
//! multi-socket "NUMA-ish" profile for server-scale (64–512 lane) runs.
//!
//! Sources for the Haswell calibration: the Intel 64 optimization manual
//! (lock-prefixed RMW and `mfence` latencies on Haswell), Yoo et al. SC'13
//! (TSX begin/commit boundary cost, which the paper's §7 calls out as the
//! dominant fixed cost of small transactions), and the paper's own
//! qualitative ranking (allocation ≫ CAS ≈ fence ≫ load ≫ store).
//!
//! The absolute values are estimates; the reproduction's claims rest on the
//! *event counts* each algorithm performs, with these weights chosen so that
//! the relative magnitudes match the hardware the paper ran on.
//!
//! The NUMA-ish profile ([`CostProfile::NumaIsh`]) maps lanes onto sockets
//! of [`LANES_PER_SOCKET`] and charges lanes off socket 0 — the home socket
//! of the shared heap — a cross-socket surcharge on every coherence-class
//! event (shared loads/stores, CAS, commit publication, allocation, epoch
//! announcements). Private work (`Work`, `SpinIter`, `TxStore` into the
//! local speculative buffer, `TxBegin`) costs the same on every socket.
//! Socket 0 itself uses the Haswell table verbatim, so a NUMA-ish run at
//! ≤ [`LANES_PER_SOCKET`] lanes is bit-identical to a Haswell run.

/// A modeled micro-architectural event. Every shared-memory access in the
/// workspace goes through [`pto-htm`'s `TxWord`](../clock/fn.charge.html)
/// or an explicit charge, so simply counting these events reproduces the
/// latency structure the paper measures.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CostKind {
    /// A shared-memory load (average over the paper's L1/L2/LLC hit mix).
    SharedLoad,
    /// A shared-memory store (store-buffer absorbed).
    SharedStore,
    /// A successful (or uncontended) compare-and-swap / locked RMW.
    Cas,
    /// Extra penalty for a failed or contended CAS (line ping-pong).
    CasFail,
    /// A full memory fence (`mfence` / seq-cst store on x86).
    Fence,
    /// `TxBegin` (checkpoint + transition into speculation).
    TxBegin,
    /// `TxEnd` (validate + atomically publish the write set).
    TxEnd,
    /// An abort: roll back the speculative state and return to `TxBegin`.
    TxAbort,
    /// A transactional load (plain L1 load; tracking is free in HW).
    TxLoad,
    /// A transactional store (to the speculative buffer).
    TxStore,
    /// Allocating a node from the shared pool (malloc fast path).
    PoolAlloc,
    /// Returning a node to the shared pool.
    PoolFree,
    /// Extra allocator latency per *other* thread concurrently inside the
    /// allocator — models the shared-allocator bottleneck the paper blames
    /// for the hash table's widening gap at high thread counts (§4.5).
    AllocContend,
    /// Epoch-based-reclamation pin: announce the epoch (2 stores + fence).
    EpochPin,
    /// Epoch unpin: clear the announcement (1 store).
    EpochUnpin,
    /// One iteration of a bounded spin-wait.
    SpinIter,
    /// Generic ALU/branch work for a nontrivial private step.
    Work,
}

/// Cycle cost of one event.
#[inline]
pub const fn cycles(kind: CostKind) -> u64 {
    match kind {
        CostKind::SharedLoad => 8,
        CostKind::SharedStore => 4,
        CostKind::Cas => 24,
        CostKind::CasFail => 16,
        CostKind::Fence => 22,
        // Yoo et al. (SC'13) measured ~30-45 cycles for an empty RTM
        // region on Haswell; split across begin/commit.
        CostKind::TxBegin => 14,
        CostKind::TxEnd => 20,
        CostKind::TxAbort => 12,
        CostKind::TxLoad => 8,
        CostKind::TxStore => 4,
        CostKind::PoolAlloc => 90,
        CostKind::PoolFree => 45,
        CostKind::AllocContend => 20,
        // §4.5: eliding epoch maintenance saves "two memory fences and two
        // stores" per operation — pin and unpin are one store + fence each.
        CostKind::EpochPin => 26,
        CostKind::EpochUnpin => 26,
        CostKind::SpinIter => 12,
        CostKind::Work => 2,
    }
}

/// Number of [`CostKind`] variants (table width).
pub const N_KINDS: usize = 17;

/// Every kind, in discriminant order (index `i` holds the kind whose
/// `as usize` is `i` — asserted by a test, relied on by table lookups).
pub const ALL_KINDS: [CostKind; N_KINDS] = [
    CostKind::SharedLoad,
    CostKind::SharedStore,
    CostKind::Cas,
    CostKind::CasFail,
    CostKind::Fence,
    CostKind::TxBegin,
    CostKind::TxEnd,
    CostKind::TxAbort,
    CostKind::TxLoad,
    CostKind::TxStore,
    CostKind::PoolAlloc,
    CostKind::PoolFree,
    CostKind::AllocContend,
    CostKind::EpochPin,
    CostKind::EpochUnpin,
    CostKind::SpinIter,
    CostKind::Work,
];

/// A dense cost table indexed by `CostKind as usize`.
pub type CostTable = [u64; N_KINDS];

/// Lanes per socket under [`CostProfile::NumaIsh`]: the paper's testbed is
/// one 4-core/8-thread socket, so a socket is 8 lanes and lanes 0–7 of a
/// NUMA-ish machine *are* the Haswell machine.
pub const LANES_PER_SOCKET: usize = 8;

/// Cycle cost of one event on a lane whose socket does not own the shared
/// heap (cross-socket surcharge on coherence-class events only).
#[inline]
pub const fn numa_remote_cycles(kind: CostKind) -> u64 {
    match kind {
        // Every shared-line access risks a snoop across the interconnect;
        // charge roughly the QPI hop the Intel uncore manuals describe
        // (~100ns round trip amortized over the hit mix).
        CostKind::SharedLoad => 24,
        CostKind::SharedStore => 10,
        // RFO for the line crosses sockets on first touch.
        CostKind::Cas => 60,
        CostKind::CasFail => 40,
        CostKind::Fence => 26,
        // Entering speculation is core-local.
        CostKind::TxBegin => 14,
        // Commit publishes the write set — remote lines must be owned.
        CostKind::TxEnd => 32,
        CostKind::TxAbort => 18,
        CostKind::TxLoad => 24,
        // Speculative stores stay in the local buffer until commit.
        CostKind::TxStore => 4,
        // The shared pool lives on socket 0: remote alloc/free pays the
        // hop on the free-list CAS and the header touch.
        CostKind::PoolAlloc => 150,
        CostKind::PoolFree => 75,
        CostKind::AllocContend => 50,
        // Epoch announcements must become globally visible.
        CostKind::EpochPin => 38,
        CostKind::EpochUnpin => 38,
        // Private work is socket-independent.
        CostKind::SpinIter => 12,
        CostKind::Work => 2,
    }
}

const fn build_table(remote: bool) -> CostTable {
    let mut t = [0u64; N_KINDS];
    let mut i = 0;
    while i < N_KINDS {
        t[i] = if remote {
            numa_remote_cycles(ALL_KINDS[i])
        } else {
            cycles(ALL_KINDS[i])
        };
        i += 1;
    }
    t
}

/// The Haswell table in dense form (bit-identical to [`cycles`]).
pub static HASWELL_TABLE: CostTable = build_table(false);

/// The NUMA-ish remote-socket table in dense form.
pub static NUMA_REMOTE_TABLE: CostTable = build_table(true);

/// Which calibrated machine a [`Sim`](crate::sched::Sim) run models.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum CostProfile {
    /// The paper's testbed: one Haswell socket, flat [`cycles`] table for
    /// every lane. The default; all goldens are recorded under it.
    #[default]
    Haswell,
    /// A multi-socket server: lanes map onto sockets of
    /// [`LANES_PER_SOCKET`], socket 0 is home to the shared heap, and
    /// lanes on other sockets pay [`numa_remote_cycles`] for
    /// coherence-class events. Socket 0 charges the Haswell table, so a
    /// run confined to lanes 0–7 is bit-identical to `Haswell`.
    NumaIsh,
}

impl CostProfile {
    /// The socket a lane lives on (always 0 under `Haswell`).
    #[inline]
    pub fn socket_of(self, lane: usize) -> usize {
        match self {
            CostProfile::Haswell => 0,
            CostProfile::NumaIsh => lane / LANES_PER_SOCKET,
        }
    }

    /// The dense table a lane charges from, or `None` for the default
    /// Haswell table (lets the clock keep its const-fn fast path).
    #[inline]
    pub fn table_for(self, lane: usize) -> Option<&'static CostTable> {
        if self.socket_of(lane) == 0 {
            None
        } else {
            Some(&NUMA_REMOTE_TABLE)
        }
    }

    /// Cycle cost of `kind` on `lane` under this profile (test/reporting
    /// helper; the hot path uses the table pointer installed at attach).
    #[inline]
    pub fn cycles_on(self, lane: usize, kind: CostKind) -> u64 {
        match self.table_for(lane) {
            None => cycles(kind),
            Some(t) => t[kind as usize],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranking_matches_paper_reasoning() {
        // §4.6: allocation is the largest single cost PTO removes.
        assert!(cycles(CostKind::PoolAlloc) > cycles(CostKind::Cas));
        assert!(cycles(CostKind::PoolAlloc) > cycles(CostKind::Fence));
        // Fences and CAS dwarf plain accesses.
        assert!(cycles(CostKind::Fence) > cycles(CostKind::SharedLoad));
        assert!(cycles(CostKind::Cas) > cycles(CostKind::SharedLoad));
        // Transactional accesses are as cheap as plain ones (HW tracking is
        // free); the fixed cost sits at the boundaries.
        assert_eq!(cycles(CostKind::TxLoad), cycles(CostKind::SharedLoad));
        assert_eq!(cycles(CostKind::TxStore), cycles(CostKind::SharedStore));
        // Boundary cost exceeds one CAS but not many: small transactions
        // only pay off when they replace several atomics (§4.2).
        let boundary = cycles(CostKind::TxBegin) + cycles(CostKind::TxEnd);
        assert!(boundary > cycles(CostKind::Cas));
        assert!(boundary < 3 * cycles(CostKind::Cas));
    }

    #[test]
    fn one_tx_beats_five_cas() {
        // §4.2: replacing up to five CASes with one transaction must be a
        // win for the Mound's DCAS, or Fig 2(b) cannot reproduce.
        let five_cas = 5 * cycles(CostKind::Cas);
        let tx = cycles(CostKind::TxBegin)
            + cycles(CostKind::TxEnd)
            + 2 * cycles(CostKind::TxLoad)
            + 2 * cycles(CostKind::TxStore);
        assert!(tx < five_cas, "tx={tx} five_cas={five_cas}");
    }

    #[test]
    fn one_tx_loses_to_one_cas() {
        // §3.1/§4.3: streamlined single-CAS operations (Mound insert, hash
        // table common case) "barely benefit" — a transaction costs more
        // than the single CAS it replaces.
        let tx = cycles(CostKind::TxBegin) + cycles(CostKind::TxEnd);
        assert!(tx > cycles(CostKind::Cas));
    }

    #[test]
    fn epoch_roundtrip_is_two_stores_plus_two_fences() {
        // §4.5: PTO'd lookups "eliminate two memory fences and two stores".
        assert_eq!(
            cycles(CostKind::EpochPin) + cycles(CostKind::EpochUnpin),
            2 * cycles(CostKind::SharedStore) + 2 * cycles(CostKind::Fence)
        );
    }

    #[test]
    fn epoch_roundtrip_exceeds_tx_boundary() {
        // The §4.5/§5 lookup argument only works if entering+leaving a
        // transaction is cheaper than the epoch bookkeeping it elides.
        assert!(
            cycles(CostKind::TxBegin) + cycles(CostKind::TxEnd)
                < cycles(CostKind::EpochPin) + cycles(CostKind::EpochUnpin)
        );
    }

    #[test]
    fn all_kinds_is_in_discriminant_order() {
        for (i, k) in ALL_KINDS.iter().enumerate() {
            assert_eq!(*k as usize, i, "ALL_KINDS[{i}] = {k:?} out of order");
        }
    }

    #[test]
    fn haswell_table_matches_cycles() {
        // The dense table IS the const fn: the table-pointer fast path in
        // the clock and the null-pointer Haswell path must agree exactly.
        for k in ALL_KINDS {
            assert_eq!(HASWELL_TABLE[k as usize], cycles(k), "{k:?}");
        }
    }

    #[test]
    fn numa_remote_surcharges_coherence_events_only() {
        // Cross-socket events cost strictly more; private work is equal.
        use CostKind::*;
        for k in [
            SharedLoad,
            SharedStore,
            Cas,
            CasFail,
            TxEnd,
            TxAbort,
            TxLoad,
            PoolAlloc,
            PoolFree,
            AllocContend,
            EpochPin,
            EpochUnpin,
            Fence,
        ] {
            assert!(
                numa_remote_cycles(k) > cycles(k),
                "{k:?}: remote must exceed local"
            );
        }
        for k in [TxBegin, TxStore, SpinIter, Work] {
            assert_eq!(numa_remote_cycles(k), cycles(k), "{k:?} is socket-local");
        }
        // Remote costs stay within an order of magnitude: the profile is
        // a NUMA hop, not a different machine.
        for k in ALL_KINDS {
            assert!(numa_remote_cycles(k) <= 4 * cycles(k), "{k:?}");
        }
    }

    #[test]
    fn numa_preserves_paper_rankings() {
        // The paper's qualitative claims must survive the remote table,
        // or high-lane figures would contradict the ≤8-lane ones.
        let r = numa_remote_cycles;
        assert!(r(CostKind::PoolAlloc) > r(CostKind::Cas));
        let five_cas = 5 * r(CostKind::Cas);
        let tx = r(CostKind::TxBegin)
            + r(CostKind::TxEnd)
            + 2 * r(CostKind::TxLoad)
            + 2 * r(CostKind::TxStore);
        assert!(tx < five_cas, "tx={tx} five_cas={five_cas}");
        assert!(
            r(CostKind::TxBegin) + r(CostKind::TxEnd)
                < r(CostKind::EpochPin) + r(CostKind::EpochUnpin)
        );
    }

    #[test]
    fn socket_mapping_and_tables() {
        let h = CostProfile::Haswell;
        let n = CostProfile::NumaIsh;
        assert_eq!(h.socket_of(511), 0);
        assert_eq!(n.socket_of(0), 0);
        assert_eq!(n.socket_of(7), 0);
        assert_eq!(n.socket_of(8), 1);
        assert_eq!(n.socket_of(511), 63);
        // Socket 0 always charges the default table.
        assert!(h.table_for(500).is_none());
        assert!(n.table_for(7).is_none());
        let t = n.table_for(8).expect("remote lane gets a table");
        assert_eq!(t[CostKind::Cas as usize], numa_remote_cycles(CostKind::Cas));
        assert_eq!(n.cycles_on(3, CostKind::Cas), cycles(CostKind::Cas));
        assert_eq!(
            n.cycles_on(64, CostKind::Cas),
            numa_remote_cycles(CostKind::Cas)
        );
    }
}
