//! Haswell-calibrated cycle cost table.
//!
//! Sources for the calibration: the Intel 64 optimization manual
//! (lock-prefixed RMW and `mfence` latencies on Haswell), Yoo et al. SC'13
//! (TSX begin/commit boundary cost, which the paper's §7 calls out as the
//! dominant fixed cost of small transactions), and the paper's own
//! qualitative ranking (allocation ≫ CAS ≈ fence ≫ load ≫ store).
//!
//! The absolute values are estimates; the reproduction's claims rest on the
//! *event counts* each algorithm performs, with these weights chosen so that
//! the relative magnitudes match the hardware the paper ran on.

/// A modeled micro-architectural event. Every shared-memory access in the
/// workspace goes through [`pto-htm`'s `TxWord`](../clock/fn.charge.html)
/// or an explicit charge, so simply counting these events reproduces the
/// latency structure the paper measures.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CostKind {
    /// A shared-memory load (average over the paper's L1/L2/LLC hit mix).
    SharedLoad,
    /// A shared-memory store (store-buffer absorbed).
    SharedStore,
    /// A successful (or uncontended) compare-and-swap / locked RMW.
    Cas,
    /// Extra penalty for a failed or contended CAS (line ping-pong).
    CasFail,
    /// A full memory fence (`mfence` / seq-cst store on x86).
    Fence,
    /// `TxBegin` (checkpoint + transition into speculation).
    TxBegin,
    /// `TxEnd` (validate + atomically publish the write set).
    TxEnd,
    /// An abort: roll back the speculative state and return to `TxBegin`.
    TxAbort,
    /// A transactional load (plain L1 load; tracking is free in HW).
    TxLoad,
    /// A transactional store (to the speculative buffer).
    TxStore,
    /// Allocating a node from the shared pool (malloc fast path).
    PoolAlloc,
    /// Returning a node to the shared pool.
    PoolFree,
    /// Extra allocator latency per *other* thread concurrently inside the
    /// allocator — models the shared-allocator bottleneck the paper blames
    /// for the hash table's widening gap at high thread counts (§4.5).
    AllocContend,
    /// Epoch-based-reclamation pin: announce the epoch (2 stores + fence).
    EpochPin,
    /// Epoch unpin: clear the announcement (1 store).
    EpochUnpin,
    /// One iteration of a bounded spin-wait.
    SpinIter,
    /// Generic ALU/branch work for a nontrivial private step.
    Work,
}

/// Cycle cost of one event.
#[inline]
pub const fn cycles(kind: CostKind) -> u64 {
    match kind {
        CostKind::SharedLoad => 8,
        CostKind::SharedStore => 4,
        CostKind::Cas => 24,
        CostKind::CasFail => 16,
        CostKind::Fence => 22,
        // Yoo et al. (SC'13) measured ~30-45 cycles for an empty RTM
        // region on Haswell; split across begin/commit.
        CostKind::TxBegin => 14,
        CostKind::TxEnd => 20,
        CostKind::TxAbort => 12,
        CostKind::TxLoad => 8,
        CostKind::TxStore => 4,
        CostKind::PoolAlloc => 90,
        CostKind::PoolFree => 45,
        CostKind::AllocContend => 20,
        // §4.5: eliding epoch maintenance saves "two memory fences and two
        // stores" per operation — pin and unpin are one store + fence each.
        CostKind::EpochPin => 26,
        CostKind::EpochUnpin => 26,
        CostKind::SpinIter => 12,
        CostKind::Work => 2,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranking_matches_paper_reasoning() {
        // §4.6: allocation is the largest single cost PTO removes.
        assert!(cycles(CostKind::PoolAlloc) > cycles(CostKind::Cas));
        assert!(cycles(CostKind::PoolAlloc) > cycles(CostKind::Fence));
        // Fences and CAS dwarf plain accesses.
        assert!(cycles(CostKind::Fence) > cycles(CostKind::SharedLoad));
        assert!(cycles(CostKind::Cas) > cycles(CostKind::SharedLoad));
        // Transactional accesses are as cheap as plain ones (HW tracking is
        // free); the fixed cost sits at the boundaries.
        assert_eq!(cycles(CostKind::TxLoad), cycles(CostKind::SharedLoad));
        assert_eq!(cycles(CostKind::TxStore), cycles(CostKind::SharedStore));
        // Boundary cost exceeds one CAS but not many: small transactions
        // only pay off when they replace several atomics (§4.2).
        let boundary = cycles(CostKind::TxBegin) + cycles(CostKind::TxEnd);
        assert!(boundary > cycles(CostKind::Cas));
        assert!(boundary < 3 * cycles(CostKind::Cas));
    }

    #[test]
    fn one_tx_beats_five_cas() {
        // §4.2: replacing up to five CASes with one transaction must be a
        // win for the Mound's DCAS, or Fig 2(b) cannot reproduce.
        let five_cas = 5 * cycles(CostKind::Cas);
        let tx = cycles(CostKind::TxBegin)
            + cycles(CostKind::TxEnd)
            + 2 * cycles(CostKind::TxLoad)
            + 2 * cycles(CostKind::TxStore);
        assert!(tx < five_cas, "tx={tx} five_cas={five_cas}");
    }

    #[test]
    fn one_tx_loses_to_one_cas() {
        // §3.1/§4.3: streamlined single-CAS operations (Mound insert, hash
        // table common case) "barely benefit" — a transaction costs more
        // than the single CAS it replaces.
        let tx = cycles(CostKind::TxBegin) + cycles(CostKind::TxEnd);
        assert!(tx > cycles(CostKind::Cas));
    }

    #[test]
    fn epoch_roundtrip_is_two_stores_plus_two_fences() {
        // §4.5: PTO'd lookups "eliminate two memory fences and two stores".
        assert_eq!(
            cycles(CostKind::EpochPin) + cycles(CostKind::EpochUnpin),
            2 * cycles(CostKind::SharedStore) + 2 * cycles(CostKind::Fence)
        );
    }

    #[test]
    fn epoch_roundtrip_exceeds_tx_boundary() {
        // The §4.5/§5 lookup argument only works if entering+leaving a
        // transaction is cheaper than the epoch bookkeeping it elides.
        assert!(
            cycles(CostKind::TxBegin) + cycles(CostKind::TxEnd)
                < cycles(CostKind::EpochPin) + cycles(CostKind::EpochUnpin)
        );
    }
}
