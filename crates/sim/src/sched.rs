//! The gate scheduler: fair virtual-time execution of N logical threads.
//!
//! Each logical thread runs on its own OS thread but is only allowed to get
//! `quantum` virtual cycles ahead of the slowest still-active thread. On a
//! single physical core this produces interleavings that are faithful to an
//! N-way parallel machine *in virtual time*: transactions conflict, CASes
//! fail, and helping triggers at the rates an 8-thread Haswell would see,
//! even though only one OS thread executes at any instant.
//!
//! The protocol is decentralized: a thread that crosses a quantum boundary
//! publishes its clock and, if it is too far ahead, parks in a yield-poll
//! loop until the stragglers catch up. Finished lanes publish `u64::MAX`
//! so they never hold others back.
//!
//! Wallclock design (virtual time is untouched — the gate never charges
//! cycles):
//!
//! * `cached_min` is a monotonic lower bound on the true minimum clock.
//!   Since the true minimum only rises, `now <= cached_min + quantum`
//!   proves a lane is within bound without the O(lanes) rescan; the scan
//!   runs only when the cached bound is stale. A 1-lane simulation never
//!   leaves the fast path (its own clock *is* the minimum), so it never
//!   scans, parks, or takes any lock — there is no lock to take.
//! * Parking **polls** (`min_clock` scan + `yield_now`) instead of
//!   blocking on a futex. The previous mutex+condvar gate paid a futex
//!   wait, a futex wake, and a wake-preemption context-switch bounce per
//!   lane-quantum; on the oversubscribed one-core hosts this simulator
//!   targets, that syscall traffic dominated every multi-lane run. With
//!   yield-polling the running lane pays *nothing* to publish (no notify),
//!   and a parked lane costs one `sched_yield` per scheduler rotation —
//!   the scheduler keeps the runner on-CPU for full slices in between.
//!   With cores to spare, parked lanes poll on their own cores and resume
//!   with lower latency than a futex wake would give them.
//!
//! Correctness is simpler than the futex protocol it replaces: there are
//! no wakeups to lose. The skew bound holds because a parked lane only
//! proceeds after *reading* `min + quantum >= now`, and a stale read of
//! the monotonic minimum is always an underestimate — it can only make the
//! lane wait longer, never let it overrun. Liveness: the minimum lane
//! itself never parks (`now == min`), so some lane always runs, and its
//! published clocks reach every poller.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Default quantum: how far ahead (in virtual cycles) a thread may run
/// before waiting for stragglers. Small enough that operations (hundreds to
/// thousands of cycles) genuinely overlap; large enough to amortize the
/// synchronization cost.
pub const DEFAULT_QUANTUM: u64 = 200;

/// Shared state of one simulated machine run.
pub struct Gate {
    quantum: u64,
    clocks: Box<[AtomicU64]>,
    finals: Box<[AtomicU64]>,
    /// Monotonic lower bound on `min_clock()`.
    cached_min: AtomicU64,
    /// Park episodes (diagnostics; the 1-lane test asserts this stays
    /// zero — a single lane must never wait on the gate).
    parks: AtomicU64,
}

impl Gate {
    pub(crate) fn new(lanes: usize, quantum: u64) -> Self {
        assert!(lanes > 0, "a simulation needs at least one lane");
        Gate {
            quantum: quantum.max(1),
            clocks: (0..lanes).map(|_| AtomicU64::new(0)).collect(),
            finals: (0..lanes).map(|_| AtomicU64::new(0)).collect(),
            cached_min: AtomicU64::new(0),
            parks: AtomicU64::new(0),
        }
    }

    #[inline]
    pub(crate) fn quantum(&self) -> u64 {
        self.quantum
    }

    /// How many times any lane parked to wait for stragglers (diagnostics).
    pub fn park_count(&self) -> u64 {
        self.parks.load(Ordering::Relaxed)
    }

    fn min_clock(&self) -> u64 {
        self.clocks
            .iter()
            .map(|c| c.load(Ordering::SeqCst))
            .min()
            .unwrap_or(u64::MAX)
    }

    /// Publish `now` for `lane`; park while this lane is more than one
    /// quantum ahead of the minimum.
    pub(crate) fn sync(&self, lane: usize, now: u64) {
        self.clocks[lane].store(now, Ordering::SeqCst);
        let cm = self.cached_min.load(Ordering::SeqCst);
        if now <= cm.saturating_add(self.quantum) {
            // Within the cached bound; cached_min never exceeds the true
            // minimum, so the real bound holds too.
            return;
        }
        self.sync_slow(now);
    }

    #[cold]
    fn sync_slow(&self, now: u64) {
        let mut m = self.min_clock();
        self.cached_min.fetch_max(m, Ordering::SeqCst);
        if now <= m.saturating_add(self.quantum) {
            return;
        }
        // Too far ahead: wait for stragglers. The wait spans zero virtual
        // time (waiting charges nothing); the trace events mark where this
        // lane stalled — long waits point at load imbalance.
        crate::trace::emit(crate::trace::EventKind::GateWaitBegin);
        self.parks.fetch_add(1, Ordering::Relaxed);
        loop {
            std::thread::yield_now();
            m = self.min_clock();
            if now <= m.saturating_add(self.quantum) {
                break;
            }
        }
        self.cached_min.fetch_max(m, Ordering::SeqCst);
        crate::trace::emit(crate::trace::EventKind::GateWaitEnd);
    }

    /// Mark `lane` finished: it no longer constrains the minimum (pollers
    /// observe the published `u64::MAX` on their next scan).
    pub(crate) fn finish(&self, lane: usize, final_clock: u64) {
        self.finals[lane].store(final_clock, Ordering::SeqCst);
        self.clocks[lane].store(u64::MAX, Ordering::SeqCst);
    }
}

/// Configuration for one simulated multi-threaded run.
#[derive(Clone, Copy, Debug)]
pub struct Sim {
    /// Number of logical threads (the paper sweeps 1–8).
    pub threads: usize,
    /// Gate quantum in virtual cycles; see [`DEFAULT_QUANTUM`].
    pub quantum: u64,
}

/// Result of a simulated run.
#[derive(Clone, Debug)]
pub struct SimOutcome {
    /// Final virtual clock of every lane.
    pub per_thread: Vec<u64>,
    /// The makespan: max final clock, i.e. the virtual duration of the run.
    pub makespan: u64,
}

impl Sim {
    /// A simulation with `threads` lanes and the default quantum.
    pub fn new(threads: usize) -> Self {
        Sim {
            threads,
            quantum: DEFAULT_QUANTUM,
        }
    }

    /// Run `body(lane)` on every lane under the gate and return the virtual
    /// timing outcome. `body` typically loops over a per-thread slice of the
    /// workload, calling into data-structure operations whose shared-memory
    /// accesses charge the lane's virtual clock.
    ///
    /// ```
    /// use pto_sim::{CostKind, Sim};
    ///
    /// // Four logical threads, each charging 100 CAS-equivalents: the
    /// // virtual makespan is one thread's worth of work, because the
    /// // lanes overlap in virtual time.
    /// let out = Sim::new(4).run(|_lane| {
    ///     pto_sim::charge_n(CostKind::Cas, 100);
    /// });
    /// assert_eq!(out.per_thread.len(), 4);
    /// assert_eq!(out.makespan, 100 * pto_sim::cost::cycles(CostKind::Cas));
    /// ```
    pub fn run<F>(&self, body: F) -> SimOutcome
    where
        F: Fn(usize) + Sync,
    {
        let gate = Arc::new(Gate::new(self.threads, self.quantum));
        self.run_on(gate, body)
    }

    /// `run` against a caller-constructed gate (tests inspect the gate's
    /// diagnostics afterwards).
    pub(crate) fn run_on<F>(&self, gate: Arc<Gate>, body: F) -> SimOutcome
    where
        F: Fn(usize) + Sync,
    {
        std::thread::scope(|s| {
            for lane in 0..self.threads {
                let gate = Arc::clone(&gate);
                let body = &body;
                s.spawn(move || {
                    crate::clock::attach(gate, lane);
                    body(lane);
                    crate::clock::detach();
                });
            }
        });
        let per_thread: Vec<u64> = gate
            .finals
            .iter()
            .map(|f| f.load(Ordering::Acquire))
            .collect();
        let makespan = per_thread.iter().copied().max().unwrap_or(0);
        SimOutcome {
            per_thread,
            makespan,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock;
    use crate::cost::CostKind;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn single_lane_runs_to_completion() {
        let out = Sim::new(1).run(|_| {
            clock::charge_n(CostKind::Cas, 100);
        });
        assert_eq!(out.per_thread.len(), 1);
        assert_eq!(out.makespan, 100 * crate::cost::cycles(CostKind::Cas));
    }

    #[test]
    fn single_lane_never_waits_on_the_gate() {
        // Regression (PR 4): `sync` recomputed the min and took the gate
        // lock + notify_all on every quantum crossing, and `finish` always
        // locked — even with nobody to coordinate with. The gate now has no
        // lock at all, and a 1-lane sim must never even park: its own
        // clock is the minimum.
        let sim = Sim {
            threads: 1,
            quantum: 50,
        };
        let gate = Arc::new(Gate::new(sim.threads, sim.quantum));
        let out = sim.run_on(Arc::clone(&gate), |_| {
            for _ in 0..10_000 {
                clock::charge(CostKind::Cas);
            }
        });
        assert!(out.makespan > 0);
        assert_eq!(
            gate.park_count(),
            0,
            "a 1-lane simulation waited on the gate"
        );
    }

    #[test]
    fn lanes_progress_together() {
        // With the gate, no lane can finish wildly ahead: all lanes charge
        // the same work, so final clocks must be equal.
        let out = Sim::new(4).run(|_| {
            for _ in 0..1000 {
                clock::charge(CostKind::SharedLoad);
            }
        });
        let min = *out.per_thread.iter().min().unwrap();
        let max = *out.per_thread.iter().max().unwrap();
        assert_eq!(min, max);
        assert_eq!(out.makespan, max);
    }

    #[test]
    fn unbalanced_lanes_do_not_deadlock() {
        // A lane that finishes early must not gate the others.
        let out = Sim::new(3).run(|lane| {
            let reps = if lane == 0 { 10 } else { 5000 };
            for _ in 0..reps {
                clock::charge(CostKind::Fence);
            }
        });
        assert!(out.per_thread[0] < out.per_thread[1]);
        assert_eq!(out.per_thread[1], out.per_thread[2]);
    }

    #[test]
    fn virtual_overlap_is_bounded_by_quantum() {
        // Record the max observed skew between two lanes at sync points; it
        // can exceed the quantum only by one charge granule.
        let skew = AtomicUsize::new(0);
        let a = AtomicU64::new(0);
        let b = AtomicU64::new(0);
        let sim = Sim {
            threads: 2,
            quantum: 100,
        };
        sim.run(|lane| {
            for _ in 0..2000 {
                clock::charge(CostKind::SharedStore);
                let me = clock::now();
                let (mine, other) = if lane == 0 { (&a, &b) } else { (&b, &a) };
                mine.store(me, Ordering::Relaxed);
                let them = other.load(Ordering::Relaxed);
                // Only count cases where I'm ahead (them lags behind me).
                if me > them {
                    let s = (me - them) as usize;
                    skew.fetch_max(s, Ordering::Relaxed);
                }
            }
        });
        // A lane may be at most quantum + one charge ahead of a *running*
        // peer; the peer's published clock may additionally lag by up to a
        // quantum of unpublished charges. Allow 3 quanta of slack.
        assert!(
            skew.load(Ordering::Relaxed) <= 300 + 8,
            "skew {} exceeds bound",
            skew.load(Ordering::Relaxed)
        );
    }

    #[test]
    fn makespan_is_max_of_lane_clocks() {
        let out = Sim::new(5).run(|lane| {
            clock::charge_cycles((lane as u64 + 1) * 1000);
        });
        assert_eq!(out.makespan, 5000);
    }

    #[test]
    fn many_lanes_on_one_core_terminate() {
        // 8 lanes (the paper's max) with mixed charge patterns.
        let out = Sim::new(8).run(|lane| {
            for i in 0..500 {
                if (i + lane) % 3 == 0 {
                    clock::charge(CostKind::Cas);
                } else {
                    clock::charge(CostKind::SharedLoad);
                }
            }
        });
        assert_eq!(out.per_thread.len(), 8);
        assert!(out.makespan > 0);
    }

    #[test]
    fn imbalanced_lanes_still_converge() {
        // Heavy imbalance with a small quantum: fast lanes must park and
        // poll while the laggard's published clocks release them. If the
        // cached-min fast path ever let a lane skip a required wait, the
        // skew assertions elsewhere would catch it; here we pin the exact
        // final clocks.
        let sim = Sim {
            threads: 4,
            quantum: 10,
        };
        let out = sim.run(|lane| {
            let reps = if lane == 0 { 20_000 } else { 500 };
            for _ in 0..reps {
                clock::charge_cycles(3);
            }
        });
        assert_eq!(out.per_thread[0], 60_000);
        assert_eq!(out.per_thread[1], 1_500);
    }
}
