//! The gate scheduler: fair virtual-time execution of N logical threads.
//!
//! Each logical thread runs on its own OS thread but is only allowed to get
//! `quantum` virtual cycles ahead of the slowest still-active thread. On a
//! single physical core this produces interleavings that are faithful to an
//! N-way parallel machine *in virtual time*: transactions conflict, CASes
//! fail, and helping triggers at the rates an 8-thread Haswell would see,
//! even though only one OS thread executes at any instant.
//!
//! The protocol is decentralized: a thread that crosses a quantum boundary
//! publishes its clock and, if it is too far ahead, parks in a yield-poll
//! loop until the stragglers catch up. Finished lanes publish `u64::MAX`
//! so they never hold others back.
//!
//! # Min tracking: tournament tree
//!
//! The gate's job is to answer "what is (a conservative bound on) the
//! minimum lane clock?" on every quantum crossing. The original design kept
//! a flat `cached_min` refreshed by an O(lanes) rescan; at the paper's 8
//! lanes that scan was noise, but at the server scales the ROADMAP targets
//! (64–512 lanes) it made every crossing linear in machine size. The gate
//! now keeps a **tournament tree** (a complete binary min-tree laid out as
//! a heap array) over the per-lane padded clocks:
//!
//! * leaf `j` *is* lane `j`'s published clock (lanes beyond the
//!   power-of-two width are phantom leaves pinned at `u64::MAX`);
//! * each internal node holds a monotone **lower bound** on the min of its
//!   subtree, maintained by `fetch_max(min(children))`;
//! * the root is a monotone lower bound on the true minimum clock.
//!
//! Invariants (the same three the flat design documented, now per node):
//!
//! 1. **Conservative**: every node value ≤ the true min of its subtree's
//!    current leaf clocks. Proof sketch: a climb writes
//!    `m = min(children)` read at some instant; child values are
//!    conservative by induction and leaves only rise (clocks are monotone,
//!    `finish` publishes `MAX`), so `m` ≤ the subtree min *now and
//!    forever*; `fetch_max` keeps the node the max of conservative values,
//!    which is conservative.
//! 2. **Monotone**: nodes change only via `fetch_max`, so a stale read is
//!    always an *underestimate* — it can only make a lane wait longer,
//!    never let it overrun the skew bound.
//! 3. **Liveness / min-lane-never-parks**: before parking, a lane runs an
//!    *exact* O(lanes) scan and publishes the true min to the root. The
//!    minimum lane sees `m == its own clock` and passes, so some lane
//!    always runs; and any lane that *becomes* the minimum while parked
//!    was already released by the last publisher's exact scan (the scan
//!    wrote the true min — that lane's clock — to the root it polls).
//!    A periodic exact scan inside the park loop backstops this.
//!
//! Cost: the fast path (the overwhelmingly common case) is one leaf store
//! plus one root load regardless of lane count; a quantum crossing that
//! misses the fast path climbs O(log lanes); only a lane about to park
//! pays the O(lanes) exact scan, and it pays it once per park episode.
//!
//! Wallclock design (virtual time is untouched — the gate never charges
//! cycles):
//!
//! * A 1-lane simulation never leaves the fast path (its own clock *is*
//!   the root bound), so it never scans, parks, or takes any lock — there
//!   is no lock to take.
//! * Parking **polls** (root load + `yield_now`) instead of blocking on a
//!   futex. The previous mutex+condvar gate paid a futex wait, a futex
//!   wake, and a wake-preemption context-switch bounce per lane-quantum;
//!   on the oversubscribed one-core hosts this simulator targets, that
//!   syscall traffic dominated every multi-lane run. With yield-polling
//!   the running lane pays *nothing* to publish (no notify), and a parked
//!   lane costs one `sched_yield` per scheduler rotation. With cores to
//!   spare, parked lanes poll on their own cores and resume with lower
//!   latency than a futex wake would give them. Pollers read only the
//!   root — at 256 lanes, 255 parked pollers no longer generate an
//!   O(lanes²) storm of full-array scans per rotation.

use crate::cost::CostProfile;
use crate::pad::CachePadded;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Default quantum: how far ahead (in virtual cycles) a thread may run
/// before waiting for stragglers. Small enough that operations (hundreds to
/// thousands of cycles) genuinely overlap; large enough to amortize the
/// synchronization cost.
pub const DEFAULT_QUANTUM: u64 = 200;

/// How many park-loop polls between exact-scan backstops.
const PARK_EXACT_SCAN_PERIOD: u32 = 1024;

/// Shared state of one simulated machine run.
pub struct Gate {
    quantum: u64,
    profile: CostProfile,
    /// Leaf clocks, padded: lane `j` publishes here on every crossing.
    clocks: Box<[CachePadded<AtomicU64>]>,
    finals: Box<[AtomicU64]>,
    /// Internal nodes of the tournament min-tree in heap order
    /// (`width - 1` of them; empty when `width == 1`). `tree[0]` is the
    /// root: a monotone conservative lower bound on `min_clock()`.
    tree: Box<[CachePadded<AtomicU64>]>,
    /// Tree width: `lanes.next_power_of_two()`.
    width: usize,
    /// Park episodes (diagnostics; the 1-lane test asserts this stays
    /// zero — a single lane must never wait on the gate).
    parks: AtomicU64,
    /// Exact-scan backstops fired inside park loops (diagnostics: nonzero
    /// means every path to the root went stale — all climbers parked —
    /// and a poller had to rescan; a chronically high count points at
    /// tournament-root staleness under the current quantum).
    backstops: AtomicU64,
}

impl Gate {
    pub(crate) fn new(lanes: usize, quantum: u64, profile: CostProfile) -> Self {
        assert!(lanes > 0, "a simulation needs at least one lane");
        let width = lanes.next_power_of_two();
        Gate {
            quantum: quantum.max(1),
            profile,
            clocks: (0..lanes).map(|_| CachePadded::new(AtomicU64::new(0))).collect(),
            finals: (0..lanes).map(|_| AtomicU64::new(0)).collect(),
            tree: (0..width - 1).map(|_| CachePadded::new(AtomicU64::new(0))).collect(),
            width,
            parks: AtomicU64::new(0),
            backstops: AtomicU64::new(0),
        }
    }

    #[inline]
    pub(crate) fn quantum(&self) -> u64 {
        self.quantum
    }

    #[inline]
    pub(crate) fn profile(&self) -> CostProfile {
        self.profile
    }

    /// How many times any lane parked to wait for stragglers (diagnostics).
    pub fn park_count(&self) -> u64 {
        self.parks.load(Ordering::Relaxed)
    }

    /// How many exact-scan backstops fired inside park loops — i.e. how
    /// often the tournament root went stale with every climber parked
    /// (diagnostics).
    pub fn backstop_count(&self) -> u64 {
        self.backstops.load(Ordering::Relaxed)
    }

    /// Leaf `j` of the conceptual heap: a real lane clock, or `MAX` for
    /// phantom leaves padding the tree to a power of two.
    #[inline]
    fn leaf(&self, j: usize) -> u64 {
        match self.clocks.get(j) {
            Some(c) => c.load(Ordering::SeqCst),
            None => u64::MAX,
        }
    }

    /// Value of heap node `i` (internal node or leaf).
    #[inline]
    fn node_value(&self, i: usize) -> u64 {
        let internal = self.width - 1;
        if i < internal {
            self.tree[i].load(Ordering::SeqCst)
        } else {
            self.leaf(i - internal)
        }
    }

    /// Current root bound: conservative, monotone `≤ min_clock()`.
    #[inline]
    pub(crate) fn root_bound(&self) -> u64 {
        if self.width == 1 {
            self.leaf(0)
        } else {
            self.tree[0].load(Ordering::SeqCst)
        }
    }

    /// Refresh the path from `lane`'s leaf to the root: O(log lanes).
    #[cold]
    fn climb(&self, lane: usize) {
        let internal = self.width - 1;
        let mut i = internal + lane;
        while i > 0 {
            let p = (i - 1) / 2;
            let m = self.node_value(2 * p + 1).min(self.node_value(2 * p + 2));
            self.tree[p].fetch_max(m, Ordering::SeqCst);
            i = p;
        }
    }

    /// Exact O(lanes) minimum over the real leaf clocks.
    fn min_clock(&self) -> u64 {
        self.clocks
            .iter()
            .map(|c| c.load(Ordering::SeqCst))
            .min()
            .unwrap_or(u64::MAX)
    }

    /// Exact scan, published to the root. Returns the scanned min.
    ///
    /// The conservativeness debug assertion reads the root *before* the
    /// scan: root-at-read ≤ true-min-at-read ≤ scanned min (the true min
    /// only rises). Reading it after would race with concurrent climbs.
    pub(crate) fn exact_min_and_publish(&self) -> u64 {
        let bound_before = self.root_bound();
        let m = self.min_clock();
        debug_assert!(
            bound_before <= m,
            "gate root bound {bound_before} overtook the true min {m}"
        );
        if self.width > 1 {
            self.tree[0].fetch_max(m, Ordering::SeqCst);
        }
        m
    }

    /// Publish `now` for `lane`; park while this lane is more than one
    /// quantum ahead of the minimum.
    pub(crate) fn sync(&self, lane: usize, now: u64) {
        debug_assert!(
            self.clocks[lane].load(Ordering::Relaxed) <= now,
            "lane {lane} clock ran backwards"
        );
        self.clocks[lane].store(now, Ordering::SeqCst);
        let bound = self.root_bound();
        if now <= bound.saturating_add(self.quantum) {
            // Within the root bound; the root never exceeds the true
            // minimum, so the real skew bound holds too.
            return;
        }
        self.sync_slow(lane, now);
    }

    #[cold]
    fn sync_slow(&self, lane: usize, now: u64) {
        // The root may be stale only along paths nobody climbed lately;
        // refresh our own path first — usually the whole story, since we
        // just published the largest clock on it.
        self.climb(lane);
        if now <= self.root_bound().saturating_add(self.quantum) {
            return;
        }
        // Still over: consult (and publish) the exact minimum. The minimum
        // lane always passes here — the scan returns its own clock — so
        // the minimum lane never parks and some lane always runs.
        let m = self.exact_min_and_publish();
        if now <= m.saturating_add(self.quantum) {
            return;
        }
        // Too far ahead: wait for stragglers. The wait spans zero virtual
        // time (waiting charges nothing); the trace events mark where this
        // lane stalled — long waits point at load imbalance.
        crate::trace::emit(crate::trace::EventKind::GateWaitBegin);
        self.parks.fetch_add(1, Ordering::Relaxed);
        crate::metrics::emit(crate::metrics::Series::GateParks, 1);
        // Skew at park time: how far this lane's clock ran ahead of the
        // exact minimum. (Gauge — the time-series shows imbalance pulses.)
        crate::metrics::emit(crate::metrics::Series::GateSkew, now - m);
        let mut polls: u32 = 0;
        loop {
            std::thread::yield_now();
            if now <= self.root_bound().saturating_add(self.quantum) {
                break;
            }
            polls = polls.wrapping_add(1);
            if polls.is_multiple_of(PARK_EXACT_SCAN_PERIOD) {
                // Backstop: if every path to the root is stale (all its
                // climbers parked), refresh it exactly rather than spin
                // on a bound nobody is raising.
                self.backstops.fetch_add(1, Ordering::Relaxed);
                crate::metrics::emit(crate::metrics::Series::GateBackstops, 1);
                let m = self.exact_min_and_publish();
                if now <= m.saturating_add(self.quantum) {
                    break;
                }
            }
        }
        crate::trace::emit(crate::trace::EventKind::GateWaitEnd);
    }

    /// Mark `lane` finished: it no longer constrains the minimum. The
    /// climb propagates the `MAX` leaf so pollers see the release without
    /// waiting for the exact-scan backstop.
    pub(crate) fn finish(&self, lane: usize, final_clock: u64) {
        self.finals[lane].store(final_clock, Ordering::SeqCst);
        self.clocks[lane].store(u64::MAX, Ordering::SeqCst);
        if self.width > 1 {
            self.climb(lane);
        }
    }
}

/// Configuration for one simulated multi-threaded run.
#[derive(Clone, Copy, Debug)]
pub struct Sim {
    /// Number of logical threads (the paper sweeps 1–8; the gate scales
    /// to the ROADMAP's 64–512).
    pub threads: usize,
    /// Gate quantum in virtual cycles; see [`DEFAULT_QUANTUM`].
    pub quantum: u64,
    /// Which calibrated machine to model; see [`CostProfile`].
    pub profile: CostProfile,
}

/// Result of a simulated run.
#[derive(Clone, Debug)]
pub struct SimOutcome {
    /// Final virtual clock of every lane.
    pub per_thread: Vec<u64>,
    /// The makespan: max final clock, i.e. the virtual duration of the run.
    pub makespan: u64,
    /// Gate park episodes during the run ([`Gate::park_count`]). Wallclock
    /// scheduling detail — deterministic comparisons must ignore it.
    pub gate_parks: u64,
    /// Exact-scan backstops fired during the run ([`Gate::backstop_count`]).
    /// Wallclock scheduling detail, like `gate_parks`.
    pub gate_backstops: u64,
}

impl Sim {
    /// A simulation with `threads` lanes, the default quantum, and the
    /// Haswell cost profile.
    pub fn new(threads: usize) -> Self {
        Sim {
            threads,
            quantum: DEFAULT_QUANTUM,
            profile: CostProfile::Haswell,
        }
    }

    /// Builder: the same simulation under a different cost profile.
    pub fn with_profile(mut self, profile: CostProfile) -> Self {
        self.profile = profile;
        self
    }

    /// Run `body(lane)` on every lane under the gate and return the virtual
    /// timing outcome. `body` typically loops over a per-thread slice of the
    /// workload, calling into data-structure operations whose shared-memory
    /// accesses charge the lane's virtual clock.
    ///
    /// ```
    /// use pto_sim::{CostKind, Sim};
    ///
    /// // Four logical threads, each charging 100 CAS-equivalents: the
    /// // virtual makespan is one thread's worth of work, because the
    /// // lanes overlap in virtual time.
    /// let out = Sim::new(4).run(|_lane| {
    ///     pto_sim::charge_n(CostKind::Cas, 100);
    /// });
    /// assert_eq!(out.per_thread.len(), 4);
    /// assert_eq!(out.makespan, 100 * pto_sim::cost::cycles(CostKind::Cas));
    /// ```
    pub fn run<F>(&self, body: F) -> SimOutcome
    where
        F: Fn(usize) + Sync,
    {
        let gate = Arc::new(Gate::new(self.threads, self.quantum, self.profile));
        self.run_on(gate, body)
    }

    /// `run` against a caller-constructed gate (tests inspect the gate's
    /// diagnostics afterwards).
    pub(crate) fn run_on<F>(&self, gate: Arc<Gate>, body: F) -> SimOutcome
    where
        F: Fn(usize) + Sync,
    {
        // Lane threads inherit the spawning thread's scoped-context slots
        // (scoped stats, injection schedules, RNG stream key) so cell
        // runners can isolate whole simulations per OS thread.
        let inherited = crate::ctx::capture();
        std::thread::scope(|s| {
            for lane in 0..self.threads {
                let gate = Arc::clone(&gate);
                let body = &body;
                let inherited = &inherited;
                s.spawn(move || {
                    crate::ctx::adopt(inherited);
                    crate::clock::attach(gate, lane);
                    // Detach via RAII: a lane that panics while attached
                    // would otherwise never call `Gate::finish`, freezing
                    // its clock as the permanent minimum and parking every
                    // other lane forever. Unwinding through the guard
                    // releases the gate so the scope can join the
                    // remaining lanes and propagate the panic.
                    struct DetachOnExit;
                    impl Drop for DetachOnExit {
                        fn drop(&mut self) {
                            // Park observer tracks before detaching: the
                            // scope join does not wait for this thread's
                            // TLS destructors, so a session drained right
                            // after `run` would miss them.
                            crate::trace::flush_local();
                            crate::metrics::flush_local();
                            crate::clock::detach();
                        }
                    }
                    let _detach = DetachOnExit;
                    body(lane);
                });
            }
        });
        let per_thread: Vec<u64> = gate
            .finals
            .iter()
            .map(|f| f.load(Ordering::Acquire))
            .collect();
        let makespan = per_thread.iter().copied().max().unwrap_or(0);
        SimOutcome {
            per_thread,
            makespan,
            gate_parks: gate.park_count(),
            gate_backstops: gate.backstop_count(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock;
    use crate::cost::CostKind;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn single_lane_runs_to_completion() {
        let out = Sim::new(1).run(|_| {
            clock::charge_n(CostKind::Cas, 100);
        });
        assert_eq!(out.per_thread.len(), 1);
        assert_eq!(out.makespan, 100 * crate::cost::cycles(CostKind::Cas));
    }

    #[test]
    fn single_lane_never_waits_on_the_gate() {
        // Regression (PR 4): `sync` recomputed the min and took the gate
        // lock + notify_all on every quantum crossing, and `finish` always
        // locked — even with nobody to coordinate with. The gate now has no
        // lock at all, and a 1-lane sim must never even park: its own
        // clock is the root bound.
        let sim = Sim {
            threads: 1,
            quantum: 50,
            profile: CostProfile::Haswell,
        };
        let gate = Arc::new(Gate::new(sim.threads, sim.quantum, sim.profile));
        let out = sim.run_on(Arc::clone(&gate), |_| {
            for _ in 0..10_000 {
                clock::charge(CostKind::Cas);
            }
        });
        assert!(out.makespan > 0);
        assert_eq!(
            gate.park_count(),
            0,
            "a 1-lane simulation waited on the gate"
        );
    }

    #[test]
    fn lanes_progress_together() {
        // With the gate, no lane can finish wildly ahead: all lanes charge
        // the same work, so final clocks must be equal.
        let out = Sim::new(4).run(|_| {
            for _ in 0..1000 {
                clock::charge(CostKind::SharedLoad);
            }
        });
        let min = *out.per_thread.iter().min().unwrap();
        let max = *out.per_thread.iter().max().unwrap();
        assert_eq!(min, max);
        assert_eq!(out.makespan, max);
    }

    #[test]
    fn unbalanced_lanes_do_not_deadlock() {
        // A lane that finishes early must not gate the others.
        let out = Sim::new(3).run(|lane| {
            let reps = if lane == 0 { 10 } else { 5000 };
            for _ in 0..reps {
                clock::charge(CostKind::Fence);
            }
        });
        assert!(out.per_thread[0] < out.per_thread[1]);
        assert_eq!(out.per_thread[1], out.per_thread[2]);
    }

    #[test]
    fn virtual_overlap_is_bounded_by_quantum() {
        // Record the max observed skew between two lanes at sync points; it
        // can exceed the quantum only by one charge granule.
        let skew = AtomicUsize::new(0);
        let a = AtomicU64::new(0);
        let b = AtomicU64::new(0);
        let sim = Sim {
            threads: 2,
            quantum: 100,
            profile: CostProfile::Haswell,
        };
        sim.run(|lane| {
            for _ in 0..2000 {
                clock::charge(CostKind::SharedStore);
                let me = clock::now();
                let (mine, other) = if lane == 0 { (&a, &b) } else { (&b, &a) };
                mine.store(me, Ordering::Relaxed);
                let them = other.load(Ordering::Relaxed);
                // Only count cases where I'm ahead (them lags behind me).
                if me > them {
                    let s = (me - them) as usize;
                    skew.fetch_max(s, Ordering::Relaxed);
                }
            }
        });
        // A lane may be at most quantum + one charge ahead of a *running*
        // peer; the peer's published clock may additionally lag by up to a
        // quantum of unpublished charges. Allow 3 quanta of slack.
        assert!(
            skew.load(Ordering::Relaxed) <= 300 + 8,
            "skew {} exceeds bound",
            skew.load(Ordering::Relaxed)
        );
    }

    #[test]
    fn makespan_is_max_of_lane_clocks() {
        let out = Sim::new(5).run(|lane| {
            clock::charge_cycles((lane as u64 + 1) * 1000);
        });
        assert_eq!(out.makespan, 5000);
    }

    #[test]
    fn many_lanes_on_one_core_terminate() {
        // 8 lanes (the paper's max) with mixed charge patterns.
        let out = Sim::new(8).run(|lane| {
            for i in 0..500 {
                if (i + lane) % 3 == 0 {
                    clock::charge(CostKind::Cas);
                } else {
                    clock::charge(CostKind::SharedLoad);
                }
            }
        });
        assert_eq!(out.per_thread.len(), 8);
        assert!(out.makespan > 0);
    }

    #[test]
    fn imbalanced_lanes_still_converge() {
        // Heavy imbalance with a small quantum: fast lanes must park and
        // poll while the laggard's published clocks release them. If the
        // root-bound fast path ever let a lane skip a required wait, the
        // skew assertions elsewhere would catch it; here we pin the exact
        // final clocks.
        let sim = Sim {
            threads: 4,
            quantum: 10,
            profile: CostProfile::Haswell,
        };
        let out = sim.run(|lane| {
            let reps = if lane == 0 { 20_000 } else { 500 };
            for _ in 0..reps {
                clock::charge_cycles(3);
            }
        });
        assert_eq!(out.per_thread[0], 60_000);
        assert_eq!(out.per_thread[1], 1_500);
    }

    #[test]
    fn sixty_four_lanes_progress_together() {
        // Tree width 64: identical work ⇒ identical final clocks, same as
        // the 4-lane invariant (the tree must not let any lane run free).
        let out = Sim::new(64).run(|_| {
            for _ in 0..300 {
                clock::charge(CostKind::SharedLoad);
            }
        });
        assert_eq!(out.per_thread.len(), 64);
        let min = *out.per_thread.iter().min().unwrap();
        let max = *out.per_thread.iter().max().unwrap();
        assert_eq!(min, max);
    }

    #[test]
    fn sixty_four_lanes_skew_is_bounded() {
        // Every lane records the max lead it observes over the slowest
        // published peer clock at its own sync points.
        const LANES: usize = 64;
        let published: Vec<CachePadded<AtomicU64>> =
            (0..LANES).map(|_| CachePadded::new(AtomicU64::new(0))).collect();
        let skew = AtomicU64::new(0);
        let sim = Sim {
            threads: LANES,
            quantum: 100,
            profile: CostProfile::Haswell,
        };
        sim.run(|lane| {
            for _ in 0..400 {
                clock::charge(CostKind::SharedStore);
                let me = clock::now();
                published[lane].store(me, Ordering::Relaxed);
                let lag = published
                    .iter()
                    .map(|p| p.load(Ordering::Relaxed))
                    .filter(|&p| p > 0)
                    .min()
                    .unwrap_or(me);
                if me > lag {
                    skew.fetch_max(me - lag, Ordering::Relaxed);
                }
            }
        });
        // Same tolerance argument as the 2-lane test: quantum of true
        // skew + quantum of unpublished lag + a charge granule per side.
        assert!(
            skew.load(Ordering::Relaxed) <= 300 + 8,
            "64-lane skew {} exceeds bound",
            skew.load(Ordering::Relaxed)
        );
    }

    #[test]
    fn two_hundred_fifty_six_imbalanced_lanes_converge() {
        // The stale-bound starvation shape: one slow laggard, 255 fast
        // lanes that all park. Every parked lane's release depends on the
        // laggard's climbs (or the exact-scan backstop) refreshing the
        // root — a stale flat cache would strand the fast lanes. Exact
        // final clocks are pinned: the work is lane-private.
        let sim = Sim {
            threads: 256,
            quantum: 50,
            profile: CostProfile::Haswell,
        };
        let out = sim.run(|lane| {
            let reps = if lane == 0 { 4_000 } else { 200 };
            for _ in 0..reps {
                clock::charge_cycles(3);
            }
        });
        assert_eq!(out.per_thread[0], 12_000);
        for lane in 1..256 {
            assert_eq!(out.per_thread[lane], 600, "lane {lane}");
        }
    }

    #[test]
    fn parks_are_counted_at_scale() {
        // The diagnostic must still fire when the tree (not the flat
        // scan) is doing the bounding.
        let sim = Sim {
            threads: 64,
            quantum: 10,
            profile: CostProfile::Haswell,
        };
        let gate = Arc::new(Gate::new(sim.threads, sim.quantum, sim.profile));
        sim.run_on(Arc::clone(&gate), |lane| {
            let reps = if lane == 0 { 2_000 } else { 50 };
            for _ in 0..reps {
                clock::charge_cycles(3);
            }
        });
        assert!(
            gate.park_count() > 0,
            "63 fast lanes against a laggard never parked"
        );
    }

    #[test]
    fn numa_profile_charges_remote_lanes_more() {
        // Same per-lane op sequence; lanes ≥ 8 sit on remote sockets and
        // pay the surcharge, so the makespan is set by a remote lane.
        let haswell = Sim::new(16).run(|_| {
            for _ in 0..100 {
                clock::charge(CostKind::Cas);
            }
        });
        let numa = Sim::new(16)
            .with_profile(CostProfile::NumaIsh)
            .run(|_| {
                for _ in 0..100 {
                    clock::charge(CostKind::Cas);
                }
            });
        let local = 100 * crate::cost::cycles(CostKind::Cas);
        let remote = 100 * crate::cost::numa_remote_cycles(CostKind::Cas);
        assert_eq!(haswell.makespan, local);
        assert_eq!(numa.makespan, remote);
        assert_eq!(numa.per_thread[0], local, "socket 0 stays Haswell");
        assert_eq!(numa.per_thread[8], remote, "socket 1 pays the hop");
    }

    #[test]
    fn numa_on_one_socket_is_bit_identical_to_haswell() {
        let body = |_lane: usize| {
            for i in 0..200u64 {
                if i % 3 == 0 {
                    clock::charge(CostKind::Cas);
                } else {
                    clock::charge(CostKind::TxLoad);
                }
            }
        };
        let h = Sim::new(8).run(body);
        let n = Sim::new(8).with_profile(CostProfile::NumaIsh).run(body);
        assert_eq!(h.per_thread, n.per_thread);
        assert_eq!(h.makespan, n.makespan);
    }
}
