//! # pto-sim — virtual-time execution substrate
//!
//! The SPAA'15 PTO paper measures wall-clock throughput of 1–8 hardware
//! threads on an Intel i7-4770. This reproduction runs on a single vCPU with
//! no TSX, so wall-clock curves would be meaningless: threads never overlap
//! physically and OS time-slicing destroys the contention structure the
//! paper's scalability results depend on.
//!
//! This crate therefore provides the *execution simulator* substrate:
//!
//! * [`cost`] — calibrated tables of cycle costs for the events the paper
//!   reasons about (loads, stores, CAS, fences, transaction boundaries,
//!   allocation, epoch maintenance): the paper's Haswell testbed plus a
//!   multi-socket NUMA-ish profile for 64–512 lane machines.
//! * [`clock`] — a per-thread **virtual cycle clock**. Every modeled event
//!   charges cycles to the current thread's clock.
//! * [`sched`] — a **gate scheduler** that runs N logical threads (backed by
//!   OS threads) such that no thread's virtual clock races more than one
//!   quantum ahead of the slowest active thread. Threads therefore overlap
//!   *in virtual time* the way N hardware threads would, and conflicts,
//!   aborts, and helping arise from genuine interleavings.
//! * [`stats`] — cache-padded atomic counters used across the workspace.
//! * [`rng`] — a tiny, dependency-free xorshift PRNG for in-library
//!   randomness (e.g. skiplist tower heights) and workload generation.
//! * [`pad`] — `CachePadded`, the in-tree `crossbeam_utils` replacement.
//! * [`sync`] — `parking_lot`-style `Mutex`/`Condvar` shims over `std::sync`.
//! * [`proptest`] — proptest-lite, the in-tree property-test harness used by
//!   every crate's differential-oracle suites.
//! * [`trace`] — virtual-time event tracing: per-thread bounded buffers of
//!   timestamped events armed by a scoped `TraceSession`, exported as Chrome
//!   trace-event JSON (Perfetto-loadable) or a terminal span summary.
//! * [`metrics`] — virtual-time counter time-series (commit/abort rates,
//!   fallback occupancy, gate skew/parks, epoch lag, pool gauges) in
//!   bounded per-lane rings armed by a scoped `MetricsSession`, exported
//!   as Perfetto counter tracks merged into the trace JSON, plus per-cell
//!   `MetricsScope` aggregates for the bench reports.
//! * [`hist`] — log2-bucketed latency histograms (p50/p90/p99/max in
//!   virtual cycles) recorded by the bench drivers.
//! * [`history`] — operation-history recording (invocation/response with
//!   virtual timestamps) consumed by the `pto-check` linearizability
//!   checker.
//! * [`json`] — a minimal JSON reader backing the trace validator.
//! * [`ctx`] — scoped per-thread context slots (stats scopes, injection
//!   schedules, RNG stream keys) inherited by [`Sim`] lane threads, the
//!   isolation layer for sharded harness runs.
//! * [`par`] — the hermetic work-stealing cell runner: run independent
//!   deterministic cells across real OS threads, results in submission
//!   order, byte-identical to a sequential run.
//!
//! The whole workspace builds hermetically: these modules exist precisely so
//! the default dependency graph contains no crates-io packages.
//!
//! Throughput is reported as `ops / makespan` where `makespan` is the
//! maximum final virtual clock, converted to ops/ms at the paper's 3.4 GHz.

pub mod clock;
pub mod cost;
pub mod ctx;
pub mod hist;
pub mod history;
pub mod json;
pub mod metrics;
pub mod pad;
pub mod par;
pub mod proptest;
pub mod rng;
pub mod sched;
pub mod stats;
pub mod sync;
pub mod trace;

pub use clock::{charge, charge_cycles, charge_n, now, spin_wait_tick};
pub use cost::{CostKind, CostProfile};
pub use sched::{Sim, SimOutcome};

/// Clock frequency of the paper's testbed (i7-4770 @ 3.40 GHz), used to
/// convert virtual cycles into the paper's ops/ms axis.
pub const CYCLES_PER_MS: u64 = 3_400_000;

/// Convert an operation count and a virtual-cycle makespan into the ops/ms
/// throughput metric used on the y-axis of every figure in the paper.
///
/// Returns 0.0 for an empty run.
pub fn ops_per_ms(ops: u64, makespan_cycles: u64) -> f64 {
    if makespan_cycles == 0 {
        return 0.0;
    }
    ops as f64 * CYCLES_PER_MS as f64 / makespan_cycles as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ops_per_ms_zero_makespan_is_zero() {
        assert_eq!(ops_per_ms(100, 0), 0.0);
    }

    #[test]
    fn ops_per_ms_matches_hand_computation() {
        // 1000 ops in 3.4M cycles = 1 ms -> 1000 ops/ms.
        let t = ops_per_ms(1000, CYCLES_PER_MS);
        assert!((t - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn ops_per_ms_scales_linearly_in_ops() {
        let a = ops_per_ms(10, 1_000_000);
        let b = ops_per_ms(20, 1_000_000);
        assert!((b - 2.0 * a).abs() < 1e-9);
    }
}
