//! Scoped per-thread context: the plumbing that lets independent
//! simulation cells run concurrently on real OS threads.
//!
//! Historically every observability channel in the workspace (HTM stats,
//! reclamation counters, latency histograms, linearizability histories,
//! abort-injection schedules) was a process-global: harmless while the
//! harness ran one cell at a time, fatal once `run_all`/`lincheck` shard
//! cells across cores — concurrent cells would bleed counts into each
//! other's deltas.
//!
//! This module gives each OS thread a tiny array of **context slots**,
//! each holding an `Arc<dyn Any>` installed by a scope guard. A cell
//! runner sets its slots, and [`Sim::run`](crate::sched::Sim::run)
//! propagates them to every lane thread it spawns ([`capture`]/[`adopt`]).
//! Consumers (`pto-htm` stats, `pto-mem` counters, …) check their slot
//! first and fall back to the process-global when it is empty, so
//! single-cell runs and existing tests behave exactly as before.
//!
//! The slot array is deliberately flat and fixed-size: a lookup is one
//! thread-local borrow and an index — cheap enough for abort-injection's
//! per-commit check.
//!
//! The module also carries a per-thread **stream key**: a 64-bit value
//! mixed into deterministic per-lane RNG seeding (see
//! [`rng::lane_draw`](crate::rng::lane_draw)) so that distinct cells get
//! distinct, reproducible random streams regardless of which OS thread
//! or order they run in.

use std::any::Any;
use std::cell::{Cell, RefCell};
use std::sync::Arc;

/// Number of context slots per thread.
pub const N_SLOTS: usize = 8;

/// Slot of `pto-htm`'s scoped transaction statistics.
pub const SLOT_HTM_STATS: usize = 0;
/// Slot of `pto-htm`'s scoped abort-injection schedule.
pub const SLOT_HTM_INJECT: usize = 1;
/// Slot of `pto-mem`'s scoped reclamation counters.
pub const SLOT_MEM: usize = 2;
/// Slot of `pto-bench`'s scoped latency histograms.
pub const SLOT_LAT: usize = 3;
/// Slot of `pto-sim`'s scoped history collector.
pub const SLOT_HISTORY: usize = 4;
/// Slot of `pto-sim`'s scoped metrics aggregation block.
pub const SLOT_METRICS: usize = 5;

type Slot = Option<Arc<dyn Any + Send + Sync>>;

thread_local! {
    static SLOTS: RefCell<[Slot; N_SLOTS]> = const { RefCell::new([None, None, None, None, None, None, None, None]) };
    static STREAM_KEY: Cell<u64> = const { Cell::new(0) };
}

// Every accessor below uses `try_with`: consumers include thread-exit
// destructors (pool magazines, hazard leases), which may run *after* this
// module's thread-locals were destroyed. Once the slots are gone the
// thread is exiting and no scope can be live on it, so "slot empty /
// key 0" is the correct degraded answer — never a panic-in-drop abort.

/// Install `value` in `idx` for the current thread, returning the previous
/// occupant (restore it when your scope ends — see [`ScopeGuard`]).
pub fn set(idx: usize, value: Arc<dyn Any + Send + Sync>) -> Slot {
    SLOTS
        .try_with(|s| s.borrow_mut()[idx].replace(value))
        .unwrap_or(None)
}

/// Clear `idx` for the current thread, returning the previous occupant.
pub fn clear(idx: usize) -> Slot {
    SLOTS.try_with(|s| s.borrow_mut()[idx].take()).unwrap_or(None)
}

/// Restore a slot to a previously captured occupant.
pub fn restore(idx: usize, prev: Slot) {
    let _ = SLOTS.try_with(|s| s.borrow_mut()[idx] = prev);
}

/// Is `idx` occupied on the current thread? (One borrow, no downcast —
/// the fast path for hot consumers.)
#[inline]
pub fn is_set(idx: usize) -> bool {
    SLOTS
        .try_with(|s| s.borrow()[idx].is_some())
        .unwrap_or(false)
}

/// Run `f` with the slot's value downcast to `T` (or `None` if the slot
/// is empty / holds another type — including after TLS teardown, when `f`
/// still runs exactly once, with `None`).
#[inline]
pub fn with<T: 'static, R>(idx: usize, f: impl FnOnce(Option<&T>) -> R) -> R {
    let mut f = Some(f);
    let res = SLOTS.try_with(|s| {
        let slots = s.borrow();
        (f.take().unwrap())(slots[idx].as_ref().and_then(|v| v.downcast_ref::<T>()))
    });
    match res {
        Ok(r) => r,
        // `try_with` failed before the closure ran, so `f` is still here.
        Err(_) => (f.take().unwrap())(None),
    }
}

/// Clone the slot's `Arc` out (for consumers that need to hold it past
/// the borrow, e.g. thread-exit destructors).
pub fn get<T: Send + Sync + 'static>(idx: usize) -> Option<Arc<T>> {
    SLOTS
        .try_with(|s| {
            let slots = s.borrow();
            slots[idx].clone().and_then(|v| v.downcast::<T>().ok())
        })
        .unwrap_or(None)
}

/// The current thread's RNG stream key (0 = unscoped).
#[inline]
pub fn stream_key() -> u64 {
    STREAM_KEY.try_with(|k| k.get()).unwrap_or(0)
}

/// Set the stream key, returning the previous value.
pub fn set_stream_key(key: u64) -> u64 {
    STREAM_KEY.try_with(|k| k.replace(key)).unwrap_or(0)
}

/// Everything a spawned worker must inherit to behave as if it ran on the
/// spawning thread: the slot array and the stream key.
#[derive(Clone)]
pub struct Inherited {
    slots: [Slot; N_SLOTS],
    stream_key: u64,
}

/// Capture the current thread's context for propagation to workers.
pub fn capture() -> Inherited {
    Inherited {
        slots: SLOTS.with(|s| s.borrow().clone()),
        stream_key: stream_key(),
    }
}

/// Adopt a captured context on the current (worker) thread.
pub fn adopt(inherited: &Inherited) {
    SLOTS.with(|s| *s.borrow_mut() = inherited.slots.clone());
    STREAM_KEY.with(|k| k.set(inherited.stream_key));
}

/// RAII: install a value in a slot for the guard's lifetime; the previous
/// occupant (usually `None`) is restored on drop.
pub struct ScopeGuard {
    idx: usize,
    prev: Slot,
}

impl ScopeGuard {
    /// Install `value` in `idx` until the guard drops.
    pub fn install(idx: usize, value: Arc<dyn Any + Send + Sync>) -> Self {
        let prev = set(idx, value);
        ScopeGuard { idx, prev }
    }
}

impl Drop for ScopeGuard {
    fn drop(&mut self) {
        restore(self.idx, self.prev.take());
    }
}

/// RAII: set the RNG stream key for the guard's lifetime.
pub struct StreamScope {
    prev: u64,
}

/// Scope a deterministic RNG stream key (e.g. a mixed cell index) to the
/// current thread until the returned guard drops.
pub fn stream_scope(key: u64) -> StreamScope {
    StreamScope {
        prev: set_stream_key(key),
    }
}

impl Drop for StreamScope {
    fn drop(&mut self) {
        set_stream_key(self.prev);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slots_are_thread_local_and_scoped() {
        assert!(!is_set(SLOT_HTM_STATS));
        {
            let _g = ScopeGuard::install(SLOT_HTM_STATS, Arc::new(42u64));
            assert!(is_set(SLOT_HTM_STATS));
            with::<u64, _>(SLOT_HTM_STATS, |v| assert_eq!(v.copied(), Some(42)));
            // Wrong type downcasts to None rather than panicking.
            with::<u32, _>(SLOT_HTM_STATS, |v| assert!(v.is_none()));
            // Another thread sees nothing.
            std::thread::scope(|s| {
                s.spawn(|| assert!(!is_set(SLOT_HTM_STATS)));
            });
        }
        assert!(!is_set(SLOT_HTM_STATS));
    }

    #[test]
    fn guards_nest_and_restore() {
        let _outer = ScopeGuard::install(SLOT_MEM, Arc::new(1u64));
        {
            let _inner = ScopeGuard::install(SLOT_MEM, Arc::new(2u64));
            with::<u64, _>(SLOT_MEM, |v| assert_eq!(v.copied(), Some(2)));
        }
        with::<u64, _>(SLOT_MEM, |v| assert_eq!(v.copied(), Some(1)));
    }

    #[test]
    fn capture_adopt_round_trips() {
        let _g = ScopeGuard::install(SLOT_LAT, Arc::new(7u64));
        let _k = stream_scope(0xABCD);
        let inherited = capture();
        std::thread::scope(|s| {
            s.spawn(|| {
                assert!(!is_set(SLOT_LAT));
                adopt(&inherited);
                with::<u64, _>(SLOT_LAT, |v| assert_eq!(v.copied(), Some(7)));
                assert_eq!(stream_key(), 0xABCD);
            });
        });
    }

    #[test]
    fn sim_lanes_inherit_the_spawners_context() {
        use std::sync::atomic::{AtomicU64, Ordering};
        let seen = Arc::new(AtomicU64::new(0));
        let _g = ScopeGuard::install(SLOT_HISTORY, Arc::new(Arc::clone(&seen)));
        let _k = stream_scope(99);
        crate::sched::Sim::new(4).run(|_| {
            assert_eq!(stream_key(), 99);
            with::<Arc<AtomicU64>, _>(SLOT_HISTORY, |v| {
                v.expect("lane missing inherited slot")
                    .fetch_add(1, Ordering::Relaxed);
            });
        });
        assert_eq!(seen.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn stream_scope_restores() {
        assert_eq!(stream_key(), 0);
        {
            let _a = stream_scope(5);
            assert_eq!(stream_key(), 5);
            {
                let _b = stream_scope(6);
                assert_eq!(stream_key(), 6);
            }
            assert_eq!(stream_key(), 5);
        }
        assert_eq!(stream_key(), 0);
    }
}
