//! Cache-line padding, in-tree replacement for `crossbeam_utils::CachePadded`.
//!
//! Aligns (and therefore sizes) the wrapped value to 128 bytes: two 64-byte
//! lines, covering the adjacent-line ("spatial") prefetcher on Intel parts
//! like the paper's i7-4770, which pulls line pairs and would otherwise
//! re-introduce false sharing between neighbouring counters.

use std::fmt;
use std::ops::{Deref, DerefMut};

/// Pads and aligns a value to 128 bytes so that hot per-thread slots
/// (virtual clocks, hazard slots, epoch announcements, combining records)
/// never share a prefetch-pair of cache lines.
#[derive(Clone, Copy, Default, PartialEq, Eq)]
#[repr(align(128))]
pub struct CachePadded<T> {
    value: T,
}

impl<T> CachePadded<T> {
    /// Pad `value` to 128 bytes.
    pub const fn new(value: T) -> Self {
        CachePadded { value }
    }

    /// Unwrap the padded value.
    pub fn into_inner(self) -> T {
        self.value
    }
}

impl<T> Deref for CachePadded<T> {
    type Target = T;

    #[inline]
    fn deref(&self) -> &T {
        &self.value
    }
}

impl<T> DerefMut for CachePadded<T> {
    #[inline]
    fn deref_mut(&mut self) -> &mut T {
        &mut self.value
    }
}

impl<T> From<T> for CachePadded<T> {
    fn from(value: T) -> Self {
        CachePadded::new(value)
    }
}

impl<T: fmt::Debug> fmt::Debug for CachePadded<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("CachePadded").field(&self.value).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::mem::{align_of, size_of};
    use std::sync::atomic::AtomicU64;

    #[test]
    fn alignment_is_128() {
        assert_eq!(align_of::<CachePadded<u8>>(), 128);
        assert_eq!(align_of::<CachePadded<AtomicU64>>(), 128);
        assert_eq!(align_of::<CachePadded<[u64; 40]>>(), 128);
    }

    #[test]
    fn size_is_a_multiple_of_alignment() {
        assert_eq!(size_of::<CachePadded<u8>>(), 128);
        assert_eq!(size_of::<CachePadded<AtomicU64>>(), 128);
        // A value larger than one pad unit rounds up to the next multiple.
        assert_eq!(size_of::<CachePadded<[u64; 40]>>(), 384);
    }

    #[test]
    fn adjacent_array_slots_are_a_prefetch_pair_apart() {
        let slots: [CachePadded<AtomicU64>; 2] =
            [CachePadded::new(AtomicU64::new(0)), CachePadded::new(AtomicU64::new(0))];
        let a = &slots[0] as *const _ as usize;
        let b = &slots[1] as *const _ as usize;
        assert_eq!(b - a, 128);
    }

    #[test]
    fn deref_and_into_inner_round_trip() {
        let mut p = CachePadded::new(41u64);
        *p += 1;
        assert_eq!(*p, 42);
        assert_eq!(p.into_inner(), 42);
    }
}
