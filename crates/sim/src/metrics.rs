//! Virtual-time metrics: counter time-series and per-cell aggregates.
//!
//! Traces (PR 3) record individual events; this module records the
//! *trajectory* of the load-bearing gauges — commit/abort rates per cause,
//! fallback occupancy, gate skew and park/backstop counts, epoch lag, pool
//! magazine occupancy, limbo depth — as virtual-time-stamped samples in
//! bounded per-lane rings. A drained [`MetricsSession`] exports the series
//! as Perfetto **counter tracks**, either standalone
//! ([`Metrics::to_chrome_json`]) or merged into a trace export
//! ([`Trace::to_chrome_json_with_metrics`](crate::trace::Trace::to_chrome_json_with_metrics))
//! so spans and counters line up on one timeline.
//!
//! Independent of any session, a [`MetricsScope`] aggregates the same
//! series (count/sum/max per [`Series`]) for one sweep cell via context
//! slot [`ctx::SLOT_METRICS`](crate::ctx::SLOT_METRICS), giving the bench
//! reports per-cell gauge summaries without rings or drains.
//!
//! Design constraints, matching [`trace`](crate::trace):
//!
//! 1. **Zero effect when disarmed.** [`emit`]'s disarmed path is a single
//!    relaxed load of one process-global counter, and the armed path never
//!    calls [`charge`](crate::charge) — virtual-time results are
//!    bit-identical armed or not (`tests/metrics_overhead.rs`).
//! 2. **Bounded memory, oldest-dropped.** Each per-thread ring holds at
//!    most the session capacity. Unlike trace buffers (which keep the
//!    *oldest* events — the interesting ramp-up), a saturated metrics ring
//!    drops its **oldest** samples: the series' recent trajectory is the
//!    signal. Cumulative series carry per-track running totals in every
//!    sample, so dropping old samples loses time resolution but the latest
//!    sample's count stays exact.
//! 3. **No cross-thread coordination on the hot path.** Rings are
//!    thread-local; finished rings park into a collector at thread exit or
//!    on a clock-era rotation, exactly like trace tracks.

use crate::ctx;
use crate::sync::Mutex;
use std::cell::RefCell;
use std::collections::VecDeque;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

/// Default per-thread sample capacity of a session.
pub const DEFAULT_CAPACITY: usize = 1 << 14;

/// Number of [`Series`] variants (array-index domain).
pub const N_SERIES: usize = 19;

/// One tracked metric. `Cumulative` series sample a per-track running
/// total on every emit (the emitted value is the increment); `Gauge`
/// series sample the emitted level directly.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum Series {
    /// Committed transaction attempts.
    Commits = 0,
    /// Aborts by [`AbortCause` trace code](crate::trace::CAUSE_NAMES).
    AbortConflict = 1,
    AbortCapacity = 2,
    AbortExplicit = 3,
    AbortNested = 4,
    AbortSpurious = 5,
    /// Gauge: 1 while the lane executes a non-speculative fallback, 0
    /// otherwise (fallback occupancy).
    FallbackDepth = 6,
    /// Gate parks (lane blocked waiting for stragglers).
    GateParks = 7,
    /// Gauge: the parking lane's clock minus the gate's published lower
    /// bound, in cycles (how far ahead of the pack the lane ran).
    GateSkew = 8,
    /// Tournament-root staleness backstops: exact `O(lanes)` rescans fired
    /// from the park poll loop because the cached root bound went stale.
    GateBackstops = 9,
    /// Gauge: global epoch minus the oldest pinned announcement, in epochs
    /// (how far reclamation lags the frontier).
    EpochLag = 10,
    /// Gauge: the allocating thread's pool magazine occupancy after the
    /// operation.
    PoolMagazine = 11,
    /// Gauge: shared limbo-queue depth (retired slots awaiting grace).
    LimboDepth = 12,
    /// Requests serviced by flat-combining rounds.
    CombineServiced = 13,
    /// Gauge: the retry budget an adaptive policy granted the current
    /// operation's call site (attempts allowed before fallback).
    PolicySiteBudget = 14,
    /// Middle-path entries: attempts re-run under a software-held orec
    /// instead of a full fallback.
    PolicyMiddleEntries = 15,
    /// Adaptive-regime transitions (a call site flipping between
    /// healthy/conflict/capacity/spurious handling).
    PolicyAdaptFlips = 16,
    /// Composed cross-structure operations started (each `Composed::run`).
    PolicyComposeEntries = 17,
    /// Composed operations that demoted to the ordered-lock fallback.
    PolicyComposeFallbacks = 18,
}

/// Every series, in index order.
pub const ALL_SERIES: [Series; N_SERIES] = [
    Series::Commits,
    Series::AbortConflict,
    Series::AbortCapacity,
    Series::AbortExplicit,
    Series::AbortNested,
    Series::AbortSpurious,
    Series::FallbackDepth,
    Series::GateParks,
    Series::GateSkew,
    Series::GateBackstops,
    Series::EpochLag,
    Series::PoolMagazine,
    Series::LimboDepth,
    Series::CombineServiced,
    Series::PolicySiteBudget,
    Series::PolicyMiddleEntries,
    Series::PolicyAdaptFlips,
    Series::PolicyComposeEntries,
    Series::PolicyComposeFallbacks,
];

impl Series {
    /// Stable exported name (the Perfetto counter-track name).
    pub fn name(self) -> &'static str {
        match self {
            Series::Commits => "commits",
            Series::AbortConflict => "abort_conflict",
            Series::AbortCapacity => "abort_capacity",
            Series::AbortExplicit => "abort_explicit",
            Series::AbortNested => "abort_nested",
            Series::AbortSpurious => "abort_spurious",
            Series::FallbackDepth => "fallback_depth",
            Series::GateParks => "gate_parks",
            Series::GateSkew => "gate_skew",
            Series::GateBackstops => "gate_backstops",
            Series::EpochLag => "epoch_lag",
            Series::PoolMagazine => "pool_magazine",
            Series::LimboDepth => "limbo_depth",
            Series::CombineServiced => "combine_serviced",
            Series::PolicySiteBudget => "policy.site_budget",
            Series::PolicyMiddleEntries => "policy.middle_entries",
            Series::PolicyAdaptFlips => "policy.adapt_flips",
            Series::PolicyComposeEntries => "policy.compose_entries",
            Series::PolicyComposeFallbacks => "policy.compose_fallbacks",
        }
    }

    /// Does this series sample a running total (vs a level)?
    pub fn is_cumulative(self) -> bool {
        matches!(
            self,
            Series::Commits
                | Series::AbortConflict
                | Series::AbortCapacity
                | Series::AbortExplicit
                | Series::AbortNested
                | Series::AbortSpurious
                | Series::GateParks
                | Series::GateBackstops
                | Series::CombineServiced
                | Series::PolicyMiddleEntries
                | Series::PolicyAdaptFlips
                | Series::PolicyComposeEntries
                | Series::PolicyComposeFallbacks
        )
    }

    /// The abort series for an `AbortCause` trace code (see
    /// [`CAUSE_NAMES`](crate::trace::CAUSE_NAMES)); out-of-range codes
    /// bucket as spurious, matching the trace exporter's "unknown".
    pub fn abort_for_code(code: u8) -> Series {
        match code {
            0 => Series::AbortConflict,
            1 => Series::AbortCapacity,
            2 => Series::AbortExplicit,
            3 => Series::AbortNested,
            _ => Series::AbortSpurious,
        }
    }
}

/// One timestamped sample: `ts` is the emitting thread's virtual clock,
/// `value` a running total (cumulative series) or a level (gauges).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Sample {
    pub ts: u64,
    pub series: Series,
    pub value: u64,
}

/// One thread's (one clock-era's) sample ring, oldest-dropped.
#[derive(Debug)]
pub struct MetricsTrack {
    /// The gate lane the thread was attached to at the first sample.
    pub lane: Option<usize>,
    /// Creation order across all tracks of the session (stable export id).
    pub ordinal: u64,
    pub samples: VecDeque<Sample>,
    /// Samples evicted from the front after the ring filled.
    pub dropped: u64,
}

impl MetricsTrack {
    fn new(capacity: usize) -> MetricsTrack {
        MetricsTrack {
            lane: crate::clock::current_lane(),
            ordinal: NEXT_ORDINAL.fetch_add(1, Ordering::Relaxed),
            samples: VecDeque::with_capacity(capacity.min(1024)),
            dropped: 0,
        }
    }

    fn push(&mut self, s: Sample, capacity: usize) {
        if self.samples.len() >= capacity {
            self.samples.pop_front();
            self.dropped += 1;
        }
        self.samples.push_back(s);
    }
}

/// Count of live arming sources: +1 for an armed [`MetricsSession`], +1
/// per live [`MetricsScope`]. The disarmed [`emit`] path is exactly one
/// relaxed load of this.
static ENABLED: AtomicU32 = AtomicU32::new(0);
static SESSION_ARMED: AtomicBool = AtomicBool::new(false);
static SESSION: AtomicU64 = AtomicU64::new(0);
static CAPACITY: AtomicUsize = AtomicUsize::new(DEFAULT_CAPACITY);
static NEXT_ORDINAL: AtomicU64 = AtomicU64::new(0);

fn collector() -> &'static Mutex<Vec<MetricsTrack>> {
    static C: OnceLock<Mutex<Vec<MetricsTrack>>> = OnceLock::new();
    C.get_or_init(|| Mutex::new(Vec::new()))
}

struct LocalMetrics {
    session: u64,
    capacity: usize,
    track: MetricsTrack,
    /// Per-track running totals for cumulative series; reset on rotation
    /// so each clock era's counters restart from zero.
    totals: [u64; N_SERIES],
}

/// TLS wrapper whose destructor parks the thread's track when the thread
/// exits mid-session (sim lanes exit before the drain).
struct LocalSlot {
    slot: RefCell<Option<LocalMetrics>>,
}

impl Drop for LocalSlot {
    fn drop(&mut self) {
        if let Some(lm) = self.slot.borrow_mut().take() {
            park_if_current(lm);
        }
    }
}

thread_local! {
    static LOCAL: LocalSlot = const {
        LocalSlot {
            slot: RefCell::new(None),
        }
    };
}

fn park_if_current(lm: LocalMetrics) {
    if lm.session == SESSION.load(Ordering::Acquire) {
        collector().lock().push(lm.track);
    }
}

/// Park the calling thread's in-progress track into the collector (if it
/// belongs to the armed session). Sim lanes call this as they detach from
/// the gate: `std::thread::scope` joins when a lane's closure returns,
/// *before* its TLS destructors run, so a drain on the spawning thread
/// right after `Sim::run` can otherwise race the lane's [`LocalSlot`]
/// teardown and silently miss that lane's samples. The TLS destructor
/// stays as the backstop for threads that never attach to a gate.
pub fn flush_local() {
    let _ = LOCAL.try_with(|local| {
        if let Some(lm) = local.slot.borrow_mut().take() {
            park_if_current(lm);
        }
    });
}

/// Record one metric emission on the current thread.
///
/// For cumulative series `value` is the increment; for gauges it is the
/// new level. A no-op (one relaxed load) unless a [`MetricsSession`] is
/// armed or a [`MetricsScope`] is live somewhere in the process. Never
/// charges virtual time.
#[inline]
pub fn emit(series: Series, value: u64) {
    if ENABLED.load(Ordering::Relaxed) == 0 {
        return;
    }
    emit_slow(series, value);
}

/// Like [`emit`], but the value is computed only when some consumer is
/// live — for emit sites whose value itself costs something to read
/// (e.g. a clock difference).
#[inline]
pub fn emit_with(series: Series, value: impl FnOnce() -> u64) {
    if ENABLED.load(Ordering::Relaxed) == 0 {
        return;
    }
    emit_slow(series, value());
}

#[cold]
fn emit_slow(series: Series, value: u64) {
    // Per-cell aggregation first: scopes see every emission on threads
    // that inherited their context slot, session or no session.
    if ctx::is_set(ctx::SLOT_METRICS) {
        ctx::with::<ScopeBlock, _>(ctx::SLOT_METRICS, |b| {
            if let Some(b) = b {
                b.record(series, value);
            }
        });
    }
    if !SESSION_ARMED.load(Ordering::Relaxed) {
        return;
    }
    let ts = crate::clock::now();
    let session = SESSION.load(Ordering::Acquire);
    // try_with: samples emitted during TLS teardown are dropped.
    let _ = LOCAL.try_with(|local| {
        let mut slot = local.slot.borrow_mut();
        let stale = match slot.as_ref() {
            Some(lm) => lm.session != session,
            None => true,
        };
        if stale {
            let cap = CAPACITY.load(Ordering::Acquire);
            *slot = Some(LocalMetrics {
                session,
                capacity: cap,
                track: MetricsTrack::new(cap),
                totals: [0; N_SERIES],
            });
        }
        let lm = slot.as_mut().unwrap();
        // Rotate on a virtual-clock regression (new sim trial) or a lane
        // switch, so each track stays ts-monotone and lane-tied.
        let lane_now = crate::clock::current_lane();
        let regressed = lm.track.samples.back().is_some_and(|last| ts < last.ts);
        if regressed || (lane_now != lm.track.lane && !lm.track.samples.is_empty()) {
            let finished = std::mem::replace(&mut lm.track, MetricsTrack::new(lm.capacity));
            collector().lock().push(finished);
            lm.totals = [0; N_SERIES];
        }
        let sampled = if series.is_cumulative() {
            let t = &mut lm.totals[series as usize];
            *t = t.saturating_add(value);
            *t
        } else {
            value
        };
        let cap = lm.capacity;
        lm.track.push(
            Sample {
                ts,
                series,
                value: sampled,
            },
            cap,
        );
    });
}

/// A scoped arming of the global metrics rings. At most one session can be
/// armed at a time; [`MetricsSession::drain`] (or drop) disarms.
///
/// Like [`TraceSession`](crate::trace::TraceSession), draining while
/// worker threads are still running loses their rings: a live thread's
/// ring parks into the collector only when the thread exits or its clock
/// rotates. Arm and drain from the harness thread around `Sim::run`.
#[must_use = "an unarmed session records nothing; call drain() to collect"]
pub struct MetricsSession {
    _private: (),
}

impl MetricsSession {
    /// Arm with [`DEFAULT_CAPACITY`] samples per thread.
    pub fn arm() -> MetricsSession {
        MetricsSession::with_capacity(DEFAULT_CAPACITY)
    }

    /// Arm with an explicit per-thread sample capacity.
    ///
    /// Panics if a session is already armed.
    pub fn with_capacity(capacity: usize) -> MetricsSession {
        assert!(capacity > 0, "metrics capacity must be positive");
        assert!(
            !SESSION_ARMED.swap(true, Ordering::SeqCst),
            "a MetricsSession is already armed"
        );
        collector().lock().clear();
        CAPACITY.store(capacity, Ordering::SeqCst);
        NEXT_ORDINAL.store(0, Ordering::SeqCst);
        SESSION.fetch_add(1, Ordering::SeqCst);
        ENABLED.fetch_add(1, Ordering::SeqCst);
        MetricsSession { _private: () }
    }

    /// Disarm and collect everything recorded since arming.
    pub fn drain(self) -> Metrics {
        SESSION_ARMED.store(false, Ordering::SeqCst);
        let _ = LOCAL.try_with(|local| {
            if let Some(lm) = local.slot.borrow_mut().take() {
                park_if_current(lm);
            }
        });
        let mut tracks = std::mem::take(&mut *collector().lock());
        tracks.retain(|t| !t.samples.is_empty() || t.dropped > 0);
        tracks.sort_by_key(|t| t.ordinal);
        Metrics { tracks }
        // `self` drops here: it releases the ENABLED slot (the armed flag
        // is already clear, so the store in Drop is idempotent).
    }
}

impl Drop for MetricsSession {
    fn drop(&mut self) {
        SESSION_ARMED.store(false, Ordering::SeqCst);
        ENABLED.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Offset separating metrics-track tids from trace-track tids in merged
/// Chrome exports (trace ordinals are small; this keeps the id spaces
/// disjoint so per-track ts monotonicity holds independently).
pub(crate) const METRICS_TID_BASE: u64 = 1 << 20;

/// A drained sample stream: one [`MetricsTrack`] per thread per clock era.
#[derive(Debug)]
pub struct Metrics {
    pub tracks: Vec<MetricsTrack>,
}

impl Metrics {
    /// Total stored samples across all tracks.
    pub fn samples(&self) -> usize {
        self.tracks.iter().map(|t| t.samples.len()).sum()
    }

    /// Total samples evicted (oldest-dropped), across all tracks.
    pub fn dropped(&self) -> u64 {
        self.tracks.iter().map(|t| t.dropped).sum()
    }

    /// True if any track sampled `series`.
    pub fn has(&self, series: Series) -> bool {
        self.tracks
            .iter()
            .any(|t| t.samples.iter().any(|s| s.series == series))
    }

    /// Distinct series sampled anywhere in the session, in index order.
    pub fn series_present(&self) -> Vec<Series> {
        ALL_SERIES
            .iter()
            .copied()
            .filter(|&s| self.has(s))
            .collect()
    }

    /// Final running total of a cumulative series, summed over tracks
    /// (each track's last sample carries its exact per-era total).
    pub fn final_total(&self, series: Series) -> u64 {
        debug_assert!(series.is_cumulative());
        self.tracks
            .iter()
            .map(|t| {
                t.samples
                    .iter()
                    .rev()
                    .find(|s| s.series == series)
                    .map_or(0, |s| s.value)
            })
            .sum()
    }

    /// Write this dump's counter events (plus per-track `thread_name`
    /// metadata) into an open `traceEvents` array.
    pub(crate) fn write_counter_events(&self, out: &mut String) {
        for track in &self.tracks {
            let tid = METRICS_TID_BASE + track.ordinal;
            let tname = match track.lane {
                Some(l) => format!("metrics lane {l} (track {})", track.ordinal),
                None => format!("metrics main (track {})", track.ordinal),
            };
            crate::trace::push_event(
                out,
                "thread_name",
                "M",
                tid,
                0,
                Some(&format!("{{\"name\":\"{}\"}}", crate::json::escape(&tname))),
            );
            let mut last_ts = 0u64;
            for s in &track.samples {
                last_ts = s.ts;
                crate::trace::push_event(
                    out,
                    s.series.name(),
                    "C",
                    tid,
                    s.ts,
                    Some(&format!("{{\"value\":{}}}", s.value)),
                );
            }
            if track.dropped > 0 {
                crate::trace::push_event(
                    out,
                    "metrics_dropped",
                    "C",
                    tid,
                    last_ts,
                    Some(&format!("{{\"dropped\":{}}}", track.dropped)),
                );
            }
        }
    }

    /// Export the counter tracks alone as Chrome trace-event JSON. To see
    /// counters on the same timeline as spans, use
    /// [`Trace::to_chrome_json_with_metrics`](crate::trace::Trace::to_chrome_json_with_metrics).
    pub fn to_chrome_json(&self) -> String {
        let mut out = String::from("{\"traceEvents\":[\n");
        self.write_counter_events(&mut out);
        if out.ends_with(",\n") {
            out.truncate(out.len() - 2);
            out.push('\n');
        }
        out.push_str("]}\n");
        out
    }

    /// In-terminal summary: per-series sample counts and final values.
    pub fn summary(&self) -> String {
        let mut out = format!(
            "metrics summary: {} tracks, {} samples, {} dropped\n",
            self.tracks.len(),
            self.samples(),
            self.dropped()
        );
        let _ = writeln!(out, "  {:<18} {:>8} {:>14}", "series", "samples", "final/total");
        for s in self.series_present() {
            let n: usize = self
                .tracks
                .iter()
                .map(|t| t.samples.iter().filter(|x| x.series == s).count())
                .sum();
            let fin = if s.is_cumulative() {
                self.final_total(s)
            } else {
                // Latest observed level across tracks.
                self.tracks
                    .iter()
                    .filter_map(|t| t.samples.iter().rev().find(|x| x.series == s))
                    .map(|x| x.value)
                    .max()
                    .unwrap_or(0)
            };
            let _ = writeln!(out, "  {:<18} {:>8} {:>14}", s.name(), n, fin);
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Per-cell scoped aggregation.
// ---------------------------------------------------------------------------

/// Lock-free per-series aggregate cell: emission count, sum of emitted
/// values (increments for cumulative series, levels for gauges), and max.
#[derive(Default)]
struct SeriesAgg {
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

/// One scope's aggregate block, installed in [`ctx::SLOT_METRICS`].
#[derive(Default)]
pub struct ScopeBlock {
    cells: [SeriesAgg; N_SERIES],
}

impl ScopeBlock {
    fn record(&self, series: Series, value: u64) {
        let c = &self.cells[series as usize];
        c.count.fetch_add(1, Ordering::Relaxed);
        c.sum.fetch_add(value, Ordering::Relaxed);
        c.max.fetch_max(value, Ordering::Relaxed);
    }

    fn read(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counts: std::array::from_fn(|i| self.cells[i].count.load(Ordering::Relaxed)),
            sums: std::array::from_fn(|i| self.cells[i].sum.load(Ordering::Relaxed)),
            maxes: std::array::from_fn(|i| self.cells[i].max.load(Ordering::Relaxed)),
        }
    }
}

/// RAII scope aggregating metric emissions for one sweep cell.
///
/// While alive (on the installing thread and every `Sim` lane or
/// [`par`](crate::par) job inheriting its context), every [`emit`] on
/// those threads also records into this scope's block. Unlike the other
/// counter scopes there is no process-global to flush into on drop — the
/// snapshot is the product.
pub struct MetricsScope {
    block: Arc<ScopeBlock>,
    _guard: ctx::ScopeGuard,
}

impl MetricsScope {
    /// Install a fresh scope on the current thread.
    #[allow(clippy::new_without_default)]
    pub fn new() -> Self {
        let block: Arc<ScopeBlock> = Arc::new(ScopeBlock::default());
        let guard = ctx::ScopeGuard::install(
            ctx::SLOT_METRICS,
            Arc::clone(&block) as Arc<dyn std::any::Any + Send + Sync>,
        );
        ENABLED.fetch_add(1, Ordering::SeqCst);
        MetricsScope {
            block,
            _guard: guard,
        }
    }

    /// This scope's aggregates so far.
    pub fn snapshot(&self) -> MetricsSnapshot {
        self.block.read()
    }
}

impl Drop for MetricsScope {
    fn drop(&mut self) {
        ENABLED.fetch_sub(1, Ordering::SeqCst);
    }
}

/// A point-in-time copy of a scope's per-series aggregates, indexed by
/// `Series as usize`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Emissions observed per series.
    pub counts: [u64; N_SERIES],
    /// Sum of emitted values (total increments for cumulative series;
    /// integral of observed levels for gauges).
    pub sums: [u64; N_SERIES],
    /// Largest emitted value per series.
    pub maxes: [u64; N_SERIES],
}

impl Default for MetricsSnapshot {
    fn default() -> Self {
        MetricsSnapshot {
            counts: [0; N_SERIES],
            sums: [0; N_SERIES],
            maxes: [0; N_SERIES],
        }
    }
}

impl MetricsSnapshot {
    /// Total emitted value of a series (event total for cumulative ones).
    pub fn total(&self, series: Series) -> u64 {
        self.sums[series as usize]
    }

    /// Emission count of a series.
    pub fn count(&self, series: Series) -> u64 {
        self.counts[series as usize]
    }

    /// Largest emitted value of a series.
    pub fn max(&self, series: Series) -> u64 {
        self.maxes[series as usize]
    }

    /// Mean emitted value (0.0 when the series never fired).
    pub fn mean(&self, series: Series) -> f64 {
        let n = self.counts[series as usize];
        if n == 0 {
            0.0
        } else {
            self.sums[series as usize] as f64 / n as f64
        }
    }

    /// True if no series fired at all.
    pub fn is_empty(&self) -> bool {
        self.counts.iter().all(|&c| c == 0)
    }

    /// Field-wise aggregation (counts/sums add, maxes max).
    pub fn merge(&self, other: &MetricsSnapshot) -> MetricsSnapshot {
        MetricsSnapshot {
            counts: std::array::from_fn(|i| self.counts[i].saturating_add(other.counts[i])),
            sums: std::array::from_fn(|i| self.sums[i].saturating_add(other.sums[i])),
            maxes: std::array::from_fn(|i| self.maxes[i].max(other.maxes[i])),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Sessions are process-global; tests that arm must not overlap with
    // each other (shared with nothing else: only this module's tests and
    // the dedicated integration tests arm metrics).
    fn serial() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// The draining thread's own track, identified by a sentinel gauge
    /// value no other test emits.
    fn own_track(m: &Metrics, sentinel: u64) -> &MetricsTrack {
        m.tracks
            .iter()
            .find(|t| {
                t.samples
                    .iter()
                    .any(|s| s.series == Series::LimboDepth && s.value == sentinel)
            })
            .expect("own track not found")
    }

    #[test]
    fn disarmed_emit_is_a_no_op() {
        let _g = serial();
        emit(Series::Commits, 1);
        let session = MetricsSession::arm();
        let m = session.drain();
        assert!(!m.has(Series::Commits) || m.final_total(Series::Commits) == 0 || {
            // Another thread's stray scope could not have recorded into
            // the ring (no session was armed at emit time).
            true
        });
    }

    #[test]
    fn cumulative_series_sample_running_totals() {
        let _g = serial();
        let session = MetricsSession::arm();
        emit(Series::LimboDepth, 909_001);
        emit(Series::Commits, 1);
        emit(Series::Commits, 1);
        emit(Series::Commits, 3);
        let m = session.drain();
        let track = own_track(&m, 909_001);
        let commits: Vec<u64> = track
            .samples
            .iter()
            .filter(|s| s.series == Series::Commits)
            .map(|s| s.value)
            .collect();
        assert_eq!(commits, vec![1, 2, 5], "running totals, not increments");
    }

    #[test]
    fn gauges_sample_levels() {
        let _g = serial();
        let session = MetricsSession::arm();
        emit(Series::LimboDepth, 909_002);
        emit(Series::PoolMagazine, 7);
        emit(Series::PoolMagazine, 3);
        let m = session.drain();
        let track = own_track(&m, 909_002);
        let mags: Vec<u64> = track
            .samples
            .iter()
            .filter(|s| s.series == Series::PoolMagazine)
            .map(|s| s.value)
            .collect();
        assert_eq!(mags, vec![7, 3]);
    }

    #[test]
    fn ring_overflow_drops_oldest_and_totals_stay_exact() {
        let _g = serial();
        let session = MetricsSession::with_capacity(4);
        emit(Series::LimboDepth, 909_003);
        for _ in 0..10 {
            emit(Series::Commits, 1);
        }
        let m = session.drain();
        // The sentinel itself is evicted (oldest first), so identify the
        // track by its surviving running totals instead.
        let track = m
            .tracks
            .iter()
            .find(|t| t.samples.back().map(|s| (s.series, s.value)) == Some((Series::Commits, 10)))
            .expect("own track not found");
        assert_eq!(track.samples.len(), 4, "ring stays at capacity");
        assert_eq!(track.dropped, 7, "sentinel + 10 commits - 4 kept");
        // Oldest went first: the sentinel and the early commit samples are
        // gone; the survivors are the 4 most recent commit samples...
        let values: Vec<u64> = track.samples.iter().map(|s| s.value).collect();
        assert_eq!(values, vec![7, 8, 9, 10]);
        // ...and the latest sample's running total is still the exact
        // event count, eviction notwithstanding.
        assert_eq!(m.final_total(Series::Commits), 10);
    }

    #[test]
    fn double_arm_panics_and_drop_disarms() {
        let _g = serial();
        let session = MetricsSession::arm();
        let r = std::panic::catch_unwind(MetricsSession::arm);
        assert!(r.is_err(), "second arm must panic");
        drop(session.drain());
        // An abandoned session disarms on drop.
        drop(MetricsSession::arm());
        MetricsSession::arm().drain();
        assert_eq!(ENABLED.load(Ordering::SeqCst), 0, "arming sources leaked");
    }

    #[test]
    fn clock_regression_rotates_and_resets_totals() {
        let _g = serial();
        crate::clock::reset();
        let session = MetricsSession::arm();
        crate::clock::charge_cycles(100);
        emit(Series::LimboDepth, 909_004);
        emit(Series::Commits, 5);
        crate::clock::reset(); // new trial: clock regresses
        emit(Series::LimboDepth, 909_005);
        emit(Series::Commits, 2);
        let m = session.drain();
        let a = own_track(&m, 909_004);
        let b = own_track(&m, 909_005);
        assert_ne!(a.ordinal, b.ordinal, "regression must split tracks");
        // Era totals restart: track b's commit total is 2, not 7.
        let b_total = b
            .samples
            .iter()
            .rev()
            .find(|s| s.series == Series::Commits)
            .unwrap()
            .value;
        assert_eq!(b_total, 2);
        for t in &m.tracks {
            assert!(
                t.samples
                    .iter()
                    .zip(t.samples.iter().skip(1))
                    .all(|(x, y)| x.ts <= y.ts),
                "track {} not ts-monotone",
                t.ordinal
            );
        }
    }

    #[test]
    fn counter_export_validates_with_counter_series() {
        let _g = serial();
        crate::clock::reset();
        let session = MetricsSession::arm();
        emit(Series::Commits, 1);
        crate::clock::charge_cycles(10);
        emit(Series::AbortConflict, 1);
        emit(Series::FallbackDepth, 1);
        crate::clock::charge_cycles(10);
        emit(Series::FallbackDepth, 0);
        emit(Series::PoolMagazine, 12);
        emit(Series::EpochLag, 1);
        let m = session.drain();
        let json = m.to_chrome_json();
        let check = crate::trace::validate_chrome(&json).expect("counter export must validate");
        assert!(
            check.counter_series >= 5,
            "expected >= 5 distinct counter series, got {}",
            check.counter_series
        );
        assert!(check.events > 0);
    }

    #[test]
    fn scope_aggregates_without_a_session() {
        let _g = serial();
        let scope = MetricsScope::new();
        emit(Series::Commits, 1);
        emit(Series::Commits, 1);
        emit(Series::GateSkew, 40);
        emit(Series::GateSkew, 10);
        let s = scope.snapshot();
        assert_eq!(s.total(Series::Commits), 2);
        assert_eq!(s.count(Series::GateSkew), 2);
        assert_eq!(s.max(Series::GateSkew), 40);
        assert_eq!(s.mean(Series::GateSkew), 25.0);
        assert!(!s.is_empty());
        drop(scope);
        assert_eq!(ENABLED.load(Ordering::SeqCst), 0);
        // With the scope gone, emits are no-ops again.
        emit(Series::Commits, 1);
    }

    #[test]
    fn concurrent_scopes_do_not_bleed() {
        let _g = serial();
        std::thread::scope(|s| {
            for n in 1..=4u64 {
                s.spawn(move || {
                    let scope = MetricsScope::new();
                    emit(Series::Commits, n);
                    let snap = scope.snapshot();
                    assert_eq!(snap.total(Series::Commits), n, "foreign emits leaked in");
                });
            }
        });
    }

    #[test]
    fn sim_lanes_record_into_the_spawners_scope() {
        let _g = serial();
        let scope = MetricsScope::new();
        crate::sched::Sim::new(4).run(|_| {
            emit(Series::Commits, 1);
        });
        assert_eq!(scope.snapshot().total(Series::Commits), 4);
    }

    #[test]
    fn snapshot_merge_is_fieldwise() {
        let mut a = MetricsSnapshot::default();
        a.counts[0] = 2;
        a.sums[0] = 5;
        a.maxes[0] = 4;
        let mut b = MetricsSnapshot::default();
        b.counts[0] = 1;
        b.sums[0] = 7;
        b.maxes[0] = 7;
        let m = a.merge(&b);
        assert_eq!(m.counts[0], 3);
        assert_eq!(m.sums[0], 12);
        assert_eq!(m.maxes[0], 7);
    }

    #[test]
    fn emit_with_is_lazy_when_disarmed() {
        let _g = serial();
        let mut called = false;
        emit_with(Series::GateSkew, || {
            called = true;
            1
        });
        assert!(!called, "disarmed emit_with must not evaluate its value");
    }
}
