//! # pto-list — Harris's lock-free linked list, PTO-accelerated
//!
//! Harris (DISC'01) is the paper's §2.3 citation for intermediate states
//! kept in "unused bits embedded in the data fields": removal first
//! *marks* the victim's next pointer (logical delete, forcing concurrent
//! inserts after it to fail), then unlinks it. The structure makes a clean
//! study of PTO granularity (§2.5):
//!
//! * [`ListVariant::PtoWhole`] — the entire operation (O(n) traversal plus
//!   update) as one prefix transaction. Maximal elimination (no marking
//!   round trip, no per-step validation), but the read set spans the whole
//!   search path, so conflicts and capacity aborts grow with the list.
//! * [`ListVariant::PtoUpdate`] — traversal outside the transaction,
//!   update phase (validate the `pred → curr` edge, then link/unlink)
//!   inside. Minimal conflict window at the cost of keeping the baseline's
//!   search overhead.
//!
//! Both remove variants fuse mark + unlink into one atomic step — the
//! marked-but-still-linked intermediate state never becomes visible, yet
//! concurrent fallback inserts after the victim still fail because the
//! victim's next-word changes (mark included) under them. The fallback is
//! Harris's original code, untouched; reclamation is epoch-based.

use pto_core::policy::{pto, PtoPolicy, PtoStats};
use pto_core::ConcurrentSet;
use pto_htm::{TxResult, TxWord, Txn};
use pto_mem::epoch::{self, Guard};
use pto_mem::{Pool, NIL};
use std::sync::atomic::Ordering;

/// List node; `claim` arbitrates retirement.
#[derive(Default)]
pub struct LNode {
    key: TxWord,
    next: TxWord,
    claim: TxWord,
}

const HEAD: u32 = 0;
const TAIL: u32 = 1;
const KEY_TAIL: u32 = u32::MAX;

#[inline]
fn mk(idx: u32, marked: bool) -> u64 {
    ((idx as u64) << 1) | marked as u64
}

#[inline]
fn idx_of(link: u64) -> u32 {
    (link >> 1) as u32
}

#[inline]
fn marked(link: u64) -> bool {
    link & 1 == 1
}

/// Which implementation runs first.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ListVariant {
    LockFree,
    PtoWhole,
    PtoUpdate,
}

/// A sorted linked-list set of `u64` keys (< 2^32 - 2).
pub struct HarrisList {
    nodes: Pool<LNode>,
    variant: ListVariant,
    policy: PtoPolicy,
    pub stats: PtoStats,
}

struct Edge {
    pred: u32,
    curr: u32,
    /// curr's link word at search time (unmarked).
    curr_link: u64,
}

impl HarrisList {
    pub fn new(variant: ListVariant) -> Self {
        Self::with_policy(variant, PtoPolicy::with_attempts(3))
    }

    pub fn with_policy(variant: ListVariant, policy: PtoPolicy) -> Self {
        let nodes: Pool<LNode> = Pool::new();
        let h = nodes.alloc();
        debug_assert_eq!(h, HEAD);
        let t = nodes.alloc();
        debug_assert_eq!(t, TAIL);
        nodes.get(HEAD).key.init(0);
        nodes.get(HEAD).next.init(mk(TAIL, false));
        nodes.get(HEAD).claim.init(0);
        nodes.get(TAIL).key.init(KEY_TAIL as u64);
        nodes.get(TAIL).next.init(mk(NIL, false));
        nodes.get(TAIL).claim.init(0);
        HarrisList {
            nodes,
            variant,
            policy,
            stats: PtoStats::new(),
        }
    }

    #[inline]
    fn key(&self, n: u32) -> u32 {
        self.nodes.get(n).key.load(Ordering::Acquire) as u32
    }

    #[inline]
    fn next(&self, n: u32) -> &TxWord {
        &self.nodes.get(n).next
    }

    /// Harris search: returns the edge `pred → curr` with
    /// `key(pred) < key ≤ key(curr)`, physically unlinking marked chains.
    fn search(&self, key: u32, _g: &Guard) -> Edge {
        'retry: loop {
            let mut pred = HEAD;
            let mut curr = idx_of(self.next(pred).load(Ordering::Acquire));
            loop {
                let link = self.next(curr).load(Ordering::Acquire);
                if marked(link) {
                    // Unlink the marked node; restart on interference.
                    let succ = idx_of(link);
                    if self
                        .next(pred)
                        .compare_exchange(mk(curr, false), mk(succ, false), Ordering::SeqCst)
                        .is_err()
                    {
                        continue 'retry;
                    }
                    curr = succ;
                    continue;
                }
                if self.key(curr) >= key {
                    return Edge {
                        pred,
                        curr,
                        curr_link: link,
                    };
                }
                pred = curr;
                curr = idx_of(link);
            }
        }
    }

    /// Read-only membership (no unlinking).
    fn lf_contains(&self, key: u32, _g: &Guard) -> bool {
        let mut curr = idx_of(self.next(HEAD).load(Ordering::Acquire));
        loop {
            let link = self.next(curr).load(Ordering::Acquire);
            let k = self.key(curr);
            if k >= key {
                return k == key && !marked(link);
            }
            curr = idx_of(link);
        }
    }

    fn make_node(&self, key: u32, succ: u32) -> u32 {
        let n = self.nodes.alloc();
        let node = self.nodes.get(n);
        node.key.init(key as u64);
        node.next.init(mk(succ, false));
        node.claim.init(0);
        n
    }

    /// Retire exactly once (mark winner calls this after ensuring the node
    /// is unlinked).
    fn retire_once(&self, n: u32) {
        if self.nodes.get(n).claim.cas(0, 1) {
            self.nodes.retire(n);
        }
    }

    // ------------------------------------------------------------------
    // Lock-free attempts (Harris's original protocol)
    // ------------------------------------------------------------------

    fn lf_insert_attempt(&self, key: u32, e: &Edge) -> Option<bool> {
        if self.key(e.curr) == key {
            return Some(false);
        }
        let node = self.make_node(key, e.curr);
        if self
            .next(e.pred)
            .compare_exchange(mk(e.curr, false), mk(node, false), Ordering::SeqCst)
            .is_ok()
        {
            Some(true)
        } else {
            self.nodes.free_now(node);
            None // stale edge: re-search
        }
    }

    fn lf_remove_attempt(&self, key: u32, e: &Edge, g: &Guard) -> Option<bool> {
        if self.key(e.curr) != key {
            return Some(false);
        }
        let succ = idx_of(e.curr_link);
        // Logical delete: mark curr's next.
        if self
            .next(e.curr)
            .compare_exchange(mk(succ, false), mk(succ, true), Ordering::SeqCst)
            .is_err()
        {
            return None; // lost the mark race (or succ changed): retry
        }
        // Physical unlink (best effort; searches clean up too).
        let _ = self
            .next(e.pred)
            .compare_exchange(mk(e.curr, false), mk(succ, false), Ordering::SeqCst);
        // Ensure it is unlinked before retiring.
        let _ = self.search(key, g);
        self.retire_once(e.curr);
        Some(true)
    }

    // ------------------------------------------------------------------
    // Prefix transactions
    // ------------------------------------------------------------------

    /// Whole-op search inside the transaction.
    fn tx_search<'e>(&'e self, tx: &mut Txn<'e>, key: u32) -> TxResult<(u32, u32, u64)> {
        let mut pred = HEAD;
        let mut link = tx.read(self.next(pred))?;
        loop {
            if marked(link) {
                // A marked node on the path means cleanup (helping) is due.
                return Err(tx.abort(pto_core::ABORT_HELP));
            }
            let curr = idx_of(link);
            let clink = tx.read(self.next(curr))?;
            let k = tx.read(&self.nodes.get(curr).key)? as u32;
            if k >= key {
                if marked(clink) {
                    return Err(tx.abort(pto_core::ABORT_HELP));
                }
                return Ok((pred, curr, clink));
            }
            pred = curr;
            link = clink;
        }
    }

    fn tx_insert_whole<'e>(&'e self, tx: &mut Txn<'e>, key: u32, node: u32) -> TxResult<Option<bool>> {
        let (pred, curr, _) = self.tx_search(tx, key)?;
        if tx.read(&self.nodes.get(curr).key)? as u32 == key {
            return Ok(Some(false));
        }
        self.nodes.get(node).next.init(mk(curr, false));
        tx.write(self.next(pred), mk(node, false))?;
        tx.fence();
        Ok(Some(true))
    }

    /// Whole-op remove: mark + unlink fused; the marked-but-linked
    /// intermediate state never exists (§2.3's redundant-store
    /// elimination), yet the victim's next-word still changes so stale
    /// fallback CASes on it fail.
    fn tx_remove_whole<'e>(&'e self, tx: &mut Txn<'e>, key: u32) -> TxResult<Option<(bool, u32)>> {
        let (pred, curr, clink) = self.tx_search(tx, key)?;
        if tx.read(&self.nodes.get(curr).key)? as u32 != key {
            return Ok(Some((false, NIL)));
        }
        let succ = idx_of(clink);
        tx.write(self.next(curr), mk(succ, true))?;
        tx.fence();
        tx.write(self.next(pred), mk(succ, false))?;
        tx.fence();
        Ok(Some((true, curr)))
    }

    /// Update-phase insert: validate the searched edge, then link.
    fn tx_insert_update<'e>(&'e self, tx: &mut Txn<'e>, e: &Edge, node: u32) -> TxResult<Option<bool>> {
        let plink = tx.read(self.next(e.pred))?;
        if plink != mk(e.curr, false) {
            return Ok(None); // stale: re-search
        }
        tx.write(self.next(e.pred), mk(node, false))?;
        tx.fence();
        Ok(Some(true))
    }

    fn tx_remove_update<'e>(&'e self, tx: &mut Txn<'e>, e: &Edge) -> TxResult<Option<(bool, u32)>> {
        let plink = tx.read(self.next(e.pred))?;
        let clink = tx.read(self.next(e.curr))?;
        if plink != mk(e.curr, false) || clink != e.curr_link {
            return Ok(None);
        }
        let succ = idx_of(clink);
        tx.write(self.next(e.curr), mk(succ, true))?;
        tx.fence();
        tx.write(self.next(e.pred), mk(succ, false))?;
        tx.fence();
        Ok(Some((true, e.curr)))
    }

    // ------------------------------------------------------------------
    // Drivers
    // ------------------------------------------------------------------

    fn insert_impl(&self, key: u32) -> bool {
        match self.variant {
            ListVariant::LockFree => {
                let g = epoch::pin();
                loop {
                    let e = self.search(key, &g);
                    if let Some(r) = self.lf_insert_attempt(key, &e) {
                        return r;
                    }
                }
            }
            ListVariant::PtoWhole => {
                let node = self.make_node(key, TAIL);
                let r = pto(
                    &self.policy,
                    &self.stats,
                    |tx| self.tx_insert_whole(tx, key, node),
                    || {
                        let g = epoch::pin();
                        loop {
                            let e = self.search(key, &g);
                            if self.key(e.curr) == key {
                                return Some(false);
                            }
                            // Reuse the preallocated node on the fallback.
                            self.nodes.get(node).next.init(mk(e.curr, false));
                            if self
                                .next(e.pred)
                                .compare_exchange(
                                    mk(e.curr, false),
                                    mk(node, false),
                                    Ordering::SeqCst,
                                )
                                .is_ok()
                            {
                                return Some(true);
                            }
                        }
                    },
                )
                .expect("whole-op paths always decide");
                if !r {
                    self.nodes.free_now(node);
                }
                r
            }
            ListVariant::PtoUpdate => {
                let g = epoch::pin();
                loop {
                    let e = self.search(key, &g);
                    if self.key(e.curr) == key {
                        return false;
                    }
                    let node = self.make_node(key, e.curr);
                    let out = pto(
                        &self.policy,
                        &self.stats,
                        |tx| self.tx_insert_update(tx, &e, node),
                        || self.lf_insert_attempt(key, &e),
                    );
                    match out {
                        Some(r) => {
                            if !r {
                                self.nodes.free_now(node);
                            }
                            return r;
                        }
                        None => self.nodes.free_now(node), // stale: loop
                    }
                }
            }
        }
    }

    fn remove_impl(&self, key: u32) -> bool {
        match self.variant {
            ListVariant::LockFree => {
                let g = epoch::pin();
                loop {
                    let e = self.search(key, &g);
                    if let Some(r) = self.lf_remove_attempt(key, &e, &g) {
                        return r;
                    }
                }
            }
            ListVariant::PtoWhole => {
                let out = pto(
                    &self.policy,
                    &self.stats,
                    |tx| self.tx_remove_whole(tx, key),
                    || {
                        let g = epoch::pin();
                        loop {
                            let e = self.search(key, &g);
                            if let Some(r) = self.lf_remove_attempt(key, &e, &g) {
                                // Fallback retires internally; report NIL.
                                return Some((r, NIL));
                            }
                        }
                    },
                )
                .expect("whole-op paths always decide");
                let (r, victim) = out;
                if victim != NIL {
                    self.retire_once(victim);
                }
                r
            }
            ListVariant::PtoUpdate => {
                let g = epoch::pin();
                loop {
                    let e = self.search(key, &g);
                    if self.key(e.curr) != key {
                        return false;
                    }
                    let out = pto(
                        &self.policy,
                        &self.stats,
                        |tx| self.tx_remove_update(tx, &e),
                        || self.lf_remove_attempt(key, &e, &g).map(|r| (r, NIL)),
                    );
                    match out {
                        Some((r, victim)) => {
                            if victim != NIL {
                                self.retire_once(victim);
                            }
                            return r;
                        }
                        None => continue,
                    }
                }
            }
        }
    }
}

fn to_stored(key: u64) -> u32 {
    assert!(key < (KEY_TAIL - 1) as u64, "list keys must be < 2^32 - 2");
    key as u32 + 1
}

impl ConcurrentSet for HarrisList {
    fn insert(&self, key: u64) -> bool {
        self.insert_impl(to_stored(key))
    }

    fn remove(&self, key: u64) -> bool {
        self.remove_impl(to_stored(key))
    }

    fn contains(&self, key: u64) -> bool {
        let g = epoch::pin();
        self.lf_contains(to_stored(key), &g)
    }

    fn len(&self) -> usize {
        let mut n = 0;
        let mut curr = idx_of(self.next(HEAD).load(Ordering::Relaxed));
        while curr != TAIL {
            let link = self.next(curr).load(Ordering::Relaxed);
            if !marked(link) {
                n += 1;
            }
            curr = idx_of(link);
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pto_sim::rng::XorShift64;
    use std::collections::BTreeSet;

    const VARIANTS: [ListVariant; 3] = [
        ListVariant::LockFree,
        ListVariant::PtoWhole,
        ListVariant::PtoUpdate,
    ];

    #[test]
    fn set_semantics_all_variants() {
        for v in VARIANTS {
            let l = HarrisList::new(v);
            assert!(!l.contains(5), "{v:?}");
            assert!(l.insert(5), "{v:?}");
            assert!(!l.insert(5), "{v:?}");
            assert!(l.insert(3) && l.insert(9), "{v:?}");
            assert_eq!(l.len(), 3, "{v:?}");
            assert!(l.remove(5), "{v:?}");
            assert!(!l.remove(5), "{v:?}");
            assert!(l.contains(3) && l.contains(9) && !l.contains(5), "{v:?}");
        }
    }

    #[test]
    fn sorted_iteration_order_is_maintained() {
        let l = HarrisList::new(ListVariant::PtoWhole);
        for k in [5u64, 1, 9, 3, 7] {
            l.insert(k);
        }
        let mut curr = idx_of(l.next(HEAD).load(Ordering::Relaxed));
        let mut prev = 0;
        while curr != TAIL {
            let k = l.key(curr);
            assert!(k > prev, "list not sorted");
            prev = k;
            curr = idx_of(l.next(curr).load(Ordering::Relaxed));
        }
    }

    #[test]
    fn oracle_all_variants() {
        for v in VARIANTS {
            let l = HarrisList::new(v);
            let mut oracle = BTreeSet::new();
            let mut rng = XorShift64::new(13 + v as u64);
            for _ in 0..3_000 {
                let k = rng.below(100);
                match rng.below(3) {
                    0 => assert_eq!(l.insert(k), oracle.insert(k), "{v:?} insert {k}"),
                    1 => assert_eq!(l.remove(k), oracle.remove(&k), "{v:?} remove {k}"),
                    _ => assert_eq!(l.contains(k), oracle.contains(&k), "{v:?} contains {k}"),
                }
            }
            assert_eq!(l.len(), oracle.len(), "{v:?}");
        }
    }

    fn concurrent_stress(l: &HarrisList, nthreads: usize, ops: usize, range: u64) {
        std::thread::scope(|s| {
            for t in 0..nthreads {
                let l = &l;
                s.spawn(move || {
                    let mut rng = XorShift64::new((t as u64 + 1) * 48611);
                    for _ in 0..ops {
                        let k = rng.below(range);
                        match rng.below(4) {
                            0 | 1 => {
                                l.insert(k);
                            }
                            2 => {
                                l.remove(k);
                            }
                            _ => {
                                l.contains(k);
                            }
                        }
                    }
                });
            }
        });
        // Post-stress: level list sorted, no reachable marked nodes.
        let mut curr = idx_of(l.next(HEAD).load(Ordering::Relaxed));
        let mut prev = 0;
        while curr != TAIL {
            let link = l.next(curr).load(Ordering::Relaxed);
            assert!(!marked(link), "reachable marked node");
            let k = l.key(curr);
            assert!(k > prev, "unsorted after stress");
            prev = k;
            curr = idx_of(link);
        }
    }

    #[test]
    fn concurrent_stress_all_variants() {
        for v in VARIANTS {
            let l = HarrisList::new(v);
            concurrent_stress(&l, 4, 1_500, 64);
        }
    }

    #[test]
    fn concurrent_exclusive_remove() {
        use std::sync::atomic::AtomicU64;
        let l = HarrisList::new(ListVariant::PtoUpdate);
        for k in 0..300 {
            l.insert(k);
        }
        let wins = AtomicU64::new(0);
        std::thread::scope(|s| {
            for _ in 0..4 {
                let l = &l;
                let wins = &wins;
                s.spawn(move || {
                    for k in 0..300 {
                        if l.remove(k) {
                            wins.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                });
            }
        });
        assert_eq!(wins.load(Ordering::Relaxed), 300);
        assert_eq!(l.len(), 0);
    }

    #[test]
    fn update_granularity_beats_whole_op_under_contention_cost() {
        // §2.5's granularity trade: on a long list the whole-op prefix has
        // a giant read set (conflict-prone), the update-phase prefix a tiny
        // one. Compare abort behaviour under concurrent updates.
        let whole = HarrisList::new(ListVariant::PtoWhole);
        let update = HarrisList::new(ListVariant::PtoUpdate);
        for l in [&whole, &update] {
            for k in 0..256 {
                l.insert(k * 2);
            }
        }
        for l in [&whole, &update] {
            std::thread::scope(|s| {
                for t in 0..4u64 {
                    s.spawn(move || {
                        let mut rng = XorShift64::new(t + 1);
                        for _ in 0..800 {
                            let k = rng.below(512);
                            if rng.chance(1, 2) {
                                l.insert(k);
                            } else {
                                l.remove(k);
                            }
                        }
                    });
                }
            });
        }
        let whole_rate = whole.stats.fast_rate();
        let update_rate = update.stats.fast_rate();
        assert!(
            update_rate >= whole_rate,
            "update-phase fast rate ({update_rate:.2}) should be ≥ whole-op ({whole_rate:.2})"
        );
    }

    #[test]
    #[should_panic(expected = "keys must be")]
    fn rejects_reserved_keys() {
        HarrisList::new(ListVariant::LockFree).insert(u64::MAX);
    }
}

#[cfg(test)]
mod cause_observability {
    use super::*;
    use pto_core::ConcurrentSet;

    #[test]
    fn chaos_aborts_land_in_the_spurious_bucket() {
        let l = HarrisList::with_policy(ListVariant::PtoWhole, PtoPolicy::with_attempts(2).with_chaos(100));
        assert!(l.insert(3));
        assert!(l.contains(3));
        let stats = &l.stats;
        assert!(stats.causes.spurious.get() > 0);
        assert_eq!(stats.causes.total(), stats.aborted_attempts.get());
    }
}
