//! Cross-crate HTM semantics: strong atomicity and serializability of the
//! software HTM when transactional and non-transactional code mix on
//! pool-resident data — the exact conditions PTO'd structures run under.

use pto::htm::{transaction, TxWord};
use pto::mem::Pool;
use std::sync::atomic::{AtomicU64, Ordering};

#[derive(Default)]
struct Account {
    balance: TxWord,
}

#[test]
fn transactional_transfers_conserve_money() {
    // Classic bank: transactional transfers + non-transactional audits.
    const ACCOUNTS: usize = 16;
    const TOTAL: u64 = 16_000;
    let pool: Pool<Account> = Pool::new();
    let ids: Vec<u32> = (0..ACCOUNTS).map(|_| pool.alloc()).collect();
    for &id in &ids {
        pool.get(id).balance.init(TOTAL / ACCOUNTS as u64);
    }
    let audits_ok = AtomicU64::new(0);
    let transfers_live = AtomicU64::new(3);
    std::thread::scope(|s| {
        // Transfer threads.
        for t in 0..3u64 {
            let pool = &pool;
            let ids = &ids;
            let live = &transfers_live;
            s.spawn(move || {
                let mut rng = pto::sim::rng::XorShift64::new(t + 1);
                for _ in 0..5_000 {
                    let a = ids[rng.below(ACCOUNTS as u64) as usize];
                    let b = ids[rng.below(ACCOUNTS as u64) as usize];
                    if a == b {
                        continue;
                    }
                    let _ = transaction(|tx| {
                        let from = tx.read(&pool.get(a).balance)?;
                        if from == 0 {
                            return Ok(());
                        }
                        let amt = 1 + (from / 4);
                        let to = tx.read(&pool.get(b).balance)?;
                        tx.write(&pool.get(a).balance, from - amt)?;
                        tx.write(&pool.get(b).balance, to + amt)?;
                        Ok(())
                    });
                }
                live.fetch_sub(1, Ordering::AcqRel);
            });
        }
        // Transactional auditor: every *committed* audit must see the
        // invariant. During the storm commits are opportunistic; once the
        // transfers stop, an audit is guaranteed to commit.
        {
            let pool = &pool;
            let ids = &ids;
            let audits_ok = &audits_ok;
            let live = &transfers_live;
            s.spawn(move || {
                let audit = || {
                    transaction(|tx| {
                        let mut sum = 0u64;
                        for &id in ids.iter() {
                            sum += tx.read(&pool.get(id).balance)?;
                        }
                        Ok(sum)
                    })
                };
                while live.load(Ordering::Acquire) > 0 {
                    if let Ok(sum) = audit() {
                        assert_eq!(sum, TOTAL, "transactional audit saw torn state");
                        audits_ok.fetch_add(1, Ordering::Relaxed);
                    }
                }
                // Post-storm: this one must commit.
                let sum = audit().expect("quiet audit must commit");
                assert_eq!(sum, TOTAL);
                audits_ok.fetch_add(1, Ordering::Relaxed);
            });
        }
    });
    // Quiescent audit.
    let sum: u64 = ids.iter().map(|&id| pool.get(id).balance.peek()).sum();
    assert_eq!(sum, TOTAL);
    assert!(audits_ok.load(Ordering::Relaxed) > 0, "no audit ever committed");
}

#[test]
fn nontransactional_writes_win_against_transactions() {
    // Strong atomicity, requester-wins: a plain store must never be lost,
    // and no committed transaction may have read the word "across" it.
    let w = TxWord::new(0);
    let flag = TxWord::new(0);
    std::thread::scope(|s| {
        s.spawn(|| {
            for i in 1..=10_000u64 {
                w.store(i, Ordering::Release);
            }
            flag.store(1, Ordering::Release);
        });
        s.spawn(|| {
            let attempt = || {
                transaction(|tx| {
                    let a = tx.read(&w)?;
                    let b = tx.read(&w)?;
                    assert_eq!(a, b, "same-word reads diverged in a transaction");
                    Ok(())
                })
            };
            while flag.load(Ordering::Acquire) == 0 {
                let _ = attempt(); // may conflict-abort during the storm
            }
            // After the storm a read-only transaction must commit.
            assert!(attempt().is_ok());
        });
    });
    assert_eq!(w.peek(), 10_000);
}

#[test]
fn mixed_tx_and_cas_counters_are_exact() {
    // Half the increments transactional, half CAS-based; none lost.
    let w = TxWord::new(0);
    std::thread::scope(|s| {
        for t in 0..4 {
            let w = &w;
            s.spawn(move || {
                for _ in 0..2_000 {
                    if t % 2 == 0 {
                        loop {
                            let cur = w.load(Ordering::Acquire);
                            if w.compare_exchange(cur, cur + 1, Ordering::SeqCst).is_ok() {
                                break;
                            }
                        }
                    } else {
                        loop {
                            let done = transaction(|tx| {
                                let v = tx.read(w)?;
                                tx.write(w, v + 1)?;
                                Ok(())
                            });
                            if done.is_ok() {
                                break;
                            }
                        }
                    }
                }
            });
        }
    });
    assert_eq!(w.peek(), 8_000);
}
