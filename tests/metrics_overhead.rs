//! Zero-overhead regression for the metrics and attribution subsystems
//! (PR 8): a disarmed metrics emit is a single relaxed load, and an armed
//! [`MetricsSession`] / [`ProfileSession`] only *reads* the virtual clock
//! — so instrumented and uninstrumented runs of a deterministic workload
//! must produce *bit-identical* virtual-time results.
//!
//! Same discipline as `trace_overhead.rs`: the workload avoids chaos
//! injection, transient aborts, and cross-lane conflicts, so the makespan
//! is a pure function of the per-lane op sequences.

use pto_core::policy::{pto, PtoPolicy, PtoStats};
use pto_core::profile::ProfileSession;
use pto_htm::TxWord;
use pto_sim::metrics::{self, MetricsSession, Series};
use pto_sim::{charge, CostKind, Sim};
use std::sync::Mutex;

static SERIAL: Mutex<()> = Mutex::new(());

/// Deterministic 4-lane workload covering the metrics emit sites: lane 0
/// runs private-word transactions (Commits) plus explicit-abort→fallback
/// ops (AbortExplicit, FallbackDepth, and the profiler's Fallback phase);
/// lanes 1–3 run pool alloc/retire churn under an epoch pin (PoolMagazine,
/// LimboDepth, EpochLag). Returns the full virtual-time outcome tuple.
fn workload() -> (u64, Vec<u64>, u64, u64) {
    pto_sim::clock::reset();
    let word = TxWord::new(0);
    let stats = PtoStats::new();
    let out = Sim::new(4).run(|lane| {
        if lane == 0 {
            let policy = PtoPolicy::with_attempts(3);
            for _ in 0..200 {
                pto(
                    &policy,
                    &stats,
                    |tx| {
                        let v = tx.read(&word)?;
                        tx.write(&word, v + 1)?;
                        Ok(())
                    },
                    || unreachable!("private word: the prefix cannot abort"),
                );
            }
            for _ in 0..50 {
                pto(&policy, &stats, |tx| Err::<(), _>(tx.abort(1)), || ());
            }
        } else {
            let pool: pto_mem::Pool<TxWord> = pto_mem::Pool::new();
            for i in 0..200u64 {
                let _g = pto_mem::epoch::pin();
                let idx = pool.alloc();
                if i % 8 == 0 {
                    pool.retire(idx);
                } else {
                    pool.free_now(idx);
                }
                pto_sim::charge_n(CostKind::Work, 3);
            }
        }
    });
    (
        out.makespan,
        out.per_thread.clone(),
        stats.fast.get(),
        stats.fallback.get(),
    )
}

#[test]
fn armed_metrics_session_changes_no_virtual_time_outcome() {
    let _g = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let before = workload();

    let session = MetricsSession::arm();
    let armed = workload();
    let m = session.drain();
    assert!(
        m.final_total(Series::Commits) > 0,
        "armed run sampled no commit series"
    );
    assert!(
        m.final_total(Series::AbortExplicit) > 0,
        "armed run sampled no abort series"
    );

    let after = workload();

    // Armed sampling reads the clock but never charges it; disarmed emits
    // are dead relaxed loads. The whole outcome tuple — makespan, per-lane
    // finish times, commit and fallback counts — is identical in all three
    // configurations.
    assert_eq!(before, armed, "arming metrics changed a virtual-time outcome");
    assert_eq!(before, after, "a past metrics session perturbs later runs");
}

#[test]
fn armed_profiler_changes_no_virtual_time_outcome() {
    let _g = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let before = workload();

    let session = ProfileSession::arm();
    let armed = workload();
    let profile = session.drain();
    assert!(
        profile.total_cycles() > 0,
        "armed profiler attributed nothing"
    );

    let after = workload();

    assert_eq!(before, armed, "arming the profiler changed a virtual-time outcome");
    assert_eq!(before, after, "a past profiler session perturbs later runs");
}

#[test]
fn disarmed_metrics_emit_charges_nothing() {
    let _g = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    // A charge loop with no emits — the "never compiled in" baseline...
    pto_sim::clock::reset();
    for _ in 0..1_000 {
        charge(CostKind::Work);
    }
    let plain = pto_sim::now();
    // ...must land on the same clock as the same loop with a disarmed
    // metrics emit (and a disarmed closure-form emit) per iteration.
    pto_sim::clock::reset();
    for _ in 0..1_000 {
        charge(CostKind::Work);
        metrics::emit(Series::Commits, 1);
        metrics::emit_with(Series::GateSkew, || unreachable!("disarmed: not evaluated"));
    }
    assert_eq!(pto_sim::now(), plain);
}
