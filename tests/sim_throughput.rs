//! End-to-end simulator sanity: the virtual-time gate must produce
//! physically plausible scaling and preserve the paper's qualitative
//! ordering on small workloads.

use pto_bench::drivers::{mbench, pqbench, setbench};
use pto_bench::report::average_trials;

const OPS: u64 = 400;

#[test]
fn scalable_structures_scale_in_virtual_time() {
    // Hash table, lookup-heavy: 8 virtual threads must deliver well more
    // throughput than 1 (near-disjoint buckets ⇒ near-linear).
    let t1 = average_trials(2, |s| {
        setbench(
            || pto::hashtable::FSetHashTable::new(pto::hashtable::HashVariant::LockFree, 1024),
            1,
            OPS,
            65_536,
            80,
            s,
        )
    });
    let t8 = average_trials(2, |s| {
        setbench(
            || pto::hashtable::FSetHashTable::new(pto::hashtable::HashVariant::LockFree, 1024),
            8,
            OPS,
            65_536,
            80,
            s,
        )
    });
    assert!(
        t8 > 4.0 * t1,
        "8-thread hash throughput ({t8:.0}) should be ≫ 1-thread ({t1:.0})"
    );
    // And it cannot exceed perfect linear scaling (throughput is work
    // conserving in virtual time).
    assert!(
        t8 < 9.0 * t1,
        "superlinear scaling smells like a makespan bug: {t8:.0} vs {t1:.0}"
    );
}

#[test]
fn pto_beats_lockfree_on_the_bst_write_workload() {
    // The core Figure 3(a)/5(a) claim at 4 threads, as a regression gate.
    let lf = average_trials(2, |s| {
        setbench(
            || pto::bst::Bst::new(pto::bst::BstVariant::LockFree),
            4,
            OPS,
            512,
            0,
            s,
        )
    });
    let pt = average_trials(2, |s| {
        setbench(
            || pto::bst::Bst::new(pto::bst::BstVariant::Pto1Pto2),
            4,
            OPS,
            512,
            0,
            s,
        )
    });
    assert!(
        pt > 1.1 * lf,
        "composed PTO ({pt:.0}) should clearly beat lock-free ({lf:.0})"
    );
}

#[test]
fn mound_pto_beats_lockfree_on_pqbench() {
    let lf = average_trials(2, |s| {
        pqbench(|| pto::mound::Mound::new_lockfree(16), 4, OPS, 4096, s)
    });
    let pt = average_trials(2, |s| {
        pqbench(|| pto::mound::Mound::new_pto(16), 4, OPS, 4096, s)
    });
    assert!(
        pt > lf,
        "PTO mound ({pt:.0}) should beat lock-free ({lf:.0})"
    );
}

#[test]
fn mindicator_pto_tracks_or_beats_tle() {
    // Figure 2(a)'s key qualitative property at 8 threads: PTO ≥ TLE
    // (TLE's locking fallback costs it under contention).
    let tle = average_trials(2, |s| {
        mbench(|| pto::mindicator::TleMindicator::new(64), 8, OPS, 65_536, s)
    });
    let pt = average_trials(2, |s| {
        mbench(|| pto::mindicator::PtoMindicator::new(64), 8, OPS, 65_536, s)
    });
    assert!(
        pt > 0.9 * tle,
        "PTO mindicator ({pt:.0}) should track/beat TLE ({tle:.0})"
    );
}

#[test]
fn skiplist_pto_does_not_significantly_slow_down() {
    // §4.3/§7: "Even when the methodology did not improve performance, we
    // did not observe any significant slowdowns."
    let lf = average_trials(2, |s| {
        setbench(pto::skiplist::SkipListSet::new_lockfree, 4, OPS, 512, 34, s)
    });
    let pt = average_trials(2, |s| {
        setbench(pto::skiplist::SkipListSet::new_pto, 4, OPS, 512, 34, s)
    });
    assert!(
        pt > 0.85 * lf,
        "skiplist PTO ({pt:.0}) regressed too far vs lock-free ({lf:.0})"
    );
}
