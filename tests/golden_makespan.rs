//! Golden-makespan regression (PR 4 tentpole guard): the wallclock
//! hot-path optimizations (clock fast path, gate waiter-count, reusable
//! transaction descriptors, pool magazines) must leave **virtual-time
//! results bit-identical**. These workloads are deterministic by
//! construction, and their makespans and abort-cause counters were
//! recorded on the pre-optimization tree (commit 67d054d); any divergence
//! means an optimization leaked into the cost model.
//!
//! Determinism rules the workloads obey:
//!
//! * single lane (or multi-lane with lane-private state only) — no
//!   cross-lane conflicts, so lane clocks are pure functions of the
//!   per-lane op sequences;
//! * fixed seeds, and only structures whose internals draw no per-thread
//!   RNG (HarrisList, Mindicator, MsQueue — *not* skiplist tower heights
//!   or mound leaf probes, which seed from a process-global counter);
//! * no chaos injection, no transient aborts (the only aborts are
//!   explicit/capacity, which are deterministic).
//!
//! If a future PR changes the cost table or driver op sequences on
//! purpose, regenerate the goldens: run with `PTO_GOLDEN_PRINT=1` and
//! paste the printed block.

use pto_bst::{Bst, BstVariant};
use pto_core::compose::{ComposeMode, Composed};
use pto_core::policy::{pto, pto_adaptive, AdaptivePolicy, PtoPolicy, PtoStats};
use pto_core::traits::FifoQueue;
use pto_core::{ConcurrentSet, Quiescence};
use pto_hashtable::{FSetHashTable, HashVariant};
use pto_htm::TxWord;
use pto_list::{HarrisList, ListVariant};
use pto_mindicator::{LockFreeMindicator, PtoMindicator};
use pto_msqueue::MsQueue;
use pto_sim::cost::CostProfile;
use pto_sim::rng::XorShift64;
use pto_sim::{CostKind, Sim};
use std::sync::Mutex;

/// Global HTM stats are process-wide; serialize so deltas attribute only
/// our own transactions (this file is its own test binary).
static SERIAL: Mutex<()> = Mutex::new(());

/// (makespan, begins, commits, conflict, capacity, explicit, nested, spurious)
type Golden = (u64, u64, u64, u64, u64, u64, u64, u64);

fn measure(body: impl FnOnce() -> u64) -> Golden {
    let h0 = pto_htm::snapshot();
    let makespan = body();
    let d = pto_htm::snapshot().delta(&h0);
    (
        makespan,
        d.begins,
        d.commits,
        d.aborts_conflict,
        d.aborts_capacity,
        d.aborts_explicit,
        d.aborts_nested,
        d.aborts_spurious,
    )
}

fn check(name: &str, got: Golden, want: Golden) {
    if std::env::var("PTO_GOLDEN_PRINT").is_ok() {
        println!("const GOLDEN_{}: Golden = {:?};", name.to_uppercase(), got);
        return;
    }
    assert_eq!(
        got, want,
        "{name}: virtual-time results diverged from the recorded golden \
         (makespan, begins, commits, conflict, capacity, explicit, nested, spurious)"
    );
}

/// The trace_overhead workload shape: 4 lanes, lane 0 runs private-word
/// RMW transactions plus explicit-abort→fallback ops, lanes 1–3 run
/// epoch pin/unpin loops. Exercises clock, gate, txn, and epoch paths.
fn private_word_pto() -> u64 {
    pto_sim::clock::reset();
    let word = TxWord::new(0);
    let out = Sim::new(4).run(|lane| {
        if lane == 0 {
            let policy = PtoPolicy::with_attempts(3);
            let stats = PtoStats::new();
            for _ in 0..300 {
                pto(
                    &policy,
                    &stats,
                    |tx| {
                        let v = tx.read(&word)?;
                        tx.write(&word, v + 1)?;
                        Ok(())
                    },
                    || unreachable!("private word: the prefix cannot abort"),
                );
            }
            for _ in 0..100 {
                pto(&policy, &stats, |tx| Err::<(), _>(tx.abort(1)), || ());
            }
        } else {
            for _ in 0..400 {
                let _g = pto_mem::epoch::pin();
                pto_sim::charge_n(CostKind::Work, 5);
            }
        }
    });
    out.makespan
}

/// 64 lanes (server scale; tournament-tree gate width 64) with lane 0
/// running private-word transactions and every other lane charging a
/// lane-indexed mix of shared-memory costs. All state is lane-private, so
/// per-lane clocks — and the makespan, set by the heaviest lane — are pure
/// functions of the cost table. Under [`CostProfile::NumaIsh`] lanes ≥ 8
/// sit on remote sockets and pay the cross-socket surcharge, so the two
/// profiles pin different goldens from the same op sequences.
fn lane_private_64(profile: CostProfile) -> u64 {
    pto_sim::clock::reset();
    let word = TxWord::new(0);
    let out = Sim::new(64).with_profile(profile).run(|lane| {
        if lane == 0 {
            let policy = PtoPolicy::with_attempts(3);
            let stats = PtoStats::new();
            for _ in 0..150 {
                pto(
                    &policy,
                    &stats,
                    |tx| {
                        let v = tx.read(&word)?;
                        tx.write(&word, v + 1)?;
                        Ok(())
                    },
                    || unreachable!("lane-private word: the prefix cannot abort"),
                );
            }
        } else {
            for i in 0..(400 + 4 * lane as u64) {
                match (i + lane as u64) % 3 {
                    0 => pto_sim::charge(CostKind::Cas),
                    1 => pto_sim::charge(CostKind::SharedLoad),
                    _ => pto_sim::charge_n(CostKind::Work, 2),
                }
            }
        }
    });
    out.makespan
}

/// 1-lane setbench-style loop (fixed seed) over a `ConcurrentSet`:
/// exercises txn read/write sets, commit locking, pool alloc/retire, and
/// the 1-lane gate path.
fn set_workload(s: &impl ConcurrentSet, ops: u64, range: u64, seed: u64) -> u64 {
    let mut prefill_rng = XorShift64::new(seed ^ 0xDEAD_BEEF);
    let mut inserted = 0;
    while inserted < range / 2 {
        if s.insert(prefill_rng.below(range)) {
            inserted += 1;
        }
    }
    pto_sim::clock::reset();
    let out = Sim::new(1).run(|_| {
        let mut rng = XorShift64::new(seed.wrapping_add(1));
        for _ in 0..ops {
            let k = rng.below(range);
            let roll = rng.below(100);
            if roll < 34 {
                std::hint::black_box(s.contains(k));
            } else if rng.chance(1, 2) {
                std::hint::black_box(s.insert(k));
            } else {
                std::hint::black_box(s.remove(k));
            }
        }
    });
    out.makespan
}

/// 1-lane mbench-style arrive/depart pairs on a `Quiescence` structure.
fn mindicator_workload(m: &impl Quiescence, pairs: u64, range: u64, seed: u64) -> u64 {
    pto_sim::clock::reset();
    let out = Sim::new(1).run(|_| {
        let mut rng = XorShift64::new(seed.wrapping_add(1));
        for _ in 0..pairs {
            m.arrive(rng.below(range));
            m.depart();
        }
    });
    out.makespan
}

/// 1-lane fifobench-style enqueue/dequeue on the MS-queue.
fn queue_workload(q: &MsQueue, ops: u64, seed: u64) -> u64 {
    for i in 0..64 {
        q.enqueue(i);
    }
    pto_sim::clock::reset();
    let out = Sim::new(1).run(|_| {
        let mut rng = XorShift64::new(seed.wrapping_add(1));
        for i in 0..ops {
            if rng.chance(1, 2) {
                q.enqueue(i);
            } else {
                std::hint::black_box(q.dequeue());
            }
        }
    });
    out.makespan
}

/// The `private_word_pto` shape run through the self-tuning executor:
/// 4 lanes, lane 0 runs private-word RMW prefixes plus explicit-abort→
/// fallback ops under [`pto_adaptive`]. Lane-private state, so the grant /
/// EWMA / regime bookkeeping — and its charged costs — are pinned
/// bit-exactly. On a conflict-free stream the adaptive executor must
/// behave exactly like `pto` with its base policy.
fn private_word_adaptive() -> u64 {
    pto_sim::clock::reset();
    let word = TxWord::new(0);
    let out = Sim::new(4).run(|lane| {
        if lane == 0 {
            let policy = AdaptivePolicy::new(PtoPolicy::with_attempts(3));
            let stats = PtoStats::new();
            for _ in 0..300 {
                pto_adaptive(
                    &policy,
                    &stats,
                    |tx| {
                        let v = tx.read(&word)?;
                        tx.write(&word, v + 1)?;
                        Ok(())
                    },
                    || unreachable!("private word: the prefix cannot abort"),
                );
            }
            for _ in 0..100 {
                pto_adaptive(&policy, &stats, |tx| Err::<(), _>(tx.abort(1)), || ());
            }
            assert_eq!(
                stats.fast.get(),
                300,
                "conflict-free adaptive stream must stay on the fast path"
            );
        } else {
            for _ in 0..400 {
                let _g = pto_mem::epoch::pin();
                pto_sim::charge_n(CostKind::Work, 5);
            }
        }
    });
    out.makespan
}

/// 1-lane setbench loop over the BST's §4.4 composition under self-tuning
/// policies ([`BstVariant::Adaptive`]): pins the adaptive whole-op /
/// update-phase composition end to end (grants, capacity shrink, pool
/// recycling) on a real structure.
fn bst_adaptive_workload() -> u64 {
    let b = Bst::new(BstVariant::Adaptive);
    set_workload(&b, 400, 128, 42)
}

/// Deterministic single-lane middle-path workload. One op runs against
/// its own software-held orec: both HTM attempts conflict on that one
/// granule, which arms the site (streak 1, `with_middle_streak(1)`) and
/// sends the op to the fallback. Then, under `injection_scope(2, 0)`,
/// every subsequent op's single optimistic HTM attempt is doomed
/// (Spurious) while the middle-path re-run under the owned orec commits —
/// the injection counter advances exactly twice per op, so the parity is
/// stable and the middle path carries every remaining op.
fn middle_path_word() -> u64 {
    pto_sim::clock::reset();
    let word = TxWord::new(0);
    let out = Sim::new(1).run(|_| {
        let policy = AdaptivePolicy::new(PtoPolicy::with_attempts(2)).with_middle_streak(1);
        let stats = PtoStats::new();
        // The adaptive state is keyed by call site: the arming op and the
        // injected ops must flow through the same `pto_adaptive` call.
        let _inj = pto_htm::injection_scope(2, 0);
        for i in 0..41 {
            let _own = (i == 0).then(|| {
                pto_htm::try_acquire_orec(word.orec_index(), 64)
                    .expect("fresh orec must be free")
            });
            pto_adaptive(
                &policy,
                &stats,
                |tx| {
                    let v = tx.read(&word)?;
                    tx.write(&word, v + 1)?;
                    Ok(())
                },
                || {
                    assert_eq!(i, 0, "the middle path must carry every injected op");
                    pto_sim::charge_n(CostKind::Work, 3);
                },
            );
        }
        assert_eq!(stats.middle.get(), 40, "middle path must commit every injected op");
        assert_eq!(stats.fallback.get(), 1, "only the arming op may fall back");
        assert_eq!(word.peek(), 40, "each middle commit publishes one increment");
    });
    out.makespan
}

/// Deterministic single-lane **composed** workload, transfer-heavy: two
/// in-place hash tables with 64 tokens, 70% conditional transfers / 30%
/// conservation audits through one two-participant [`Composed`] site.
/// One lane means the prefix never conflicts; the only aborts are the
/// deterministic help-aborts on first-touch NIL buckets, so the makespan
/// pins the composed-prefix cost (anchor reads included) and the
/// prefix/fallback split bit-exactly.
fn composed_transfer_heavy() -> u64 {
    let a = FSetHashTable::new(HashVariant::PtoInplace, 64);
    let b = FSetHashTable::new(HashVariant::PtoInplace, 64);
    for t in 0..64 {
        a.insert(t);
    }
    pto_sim::clock::reset();
    let out = Sim::new(1).run(|_| {
        let site = Composed::new(
            vec![a.anchor(), b.anchor()],
            ComposeMode::Static(PtoPolicy::with_attempts(3)),
        );
        let mut rng = XorShift64::new(43);
        for _ in 0..300 {
            let token = rng.below(64);
            if rng.chance(7, 10) {
                let (src, dst) = if rng.chance(1, 2) { (&b, &a) } else { (&a, &b) };
                let moved = site.run(
                    |tx| {
                        let moved = src.tx_compose_update(tx, token, false)?;
                        if moved {
                            dst.tx_compose_update(tx, token, true)?;
                        }
                        Ok(moved)
                    },
                    || {
                        let moved = src.remove(token);
                        if moved {
                            dst.insert(token);
                        }
                        moved
                    },
                );
                std::hint::black_box(moved);
            } else {
                let (in_a, in_b) = site.run(
                    |tx| Ok((a.tx_compose_contains(tx, token)?, b.tx_compose_contains(tx, token)?)),
                    || (a.contains(token), b.contains(token)),
                );
                assert!(in_a != in_b, "audit saw a token in both banks or neither");
            }
        }
        // First-touch inserts into NIL buckets help-abort to the ordered-lock
        // fallback (deterministic explicit aborts); the bulk of the stream
        // must still ride the prefix. The golden's `explicit` column pins the
        // exact split.
        assert!(
            site.stats.fast.get() > site.stats.fallback.get(),
            "composed transfer stream mostly left the prefix ({} fast vs {} fallback)",
            site.stats.fast.get(),
            site.stats.fallback.get()
        );
    });
    for t in 0..64 {
        assert!(a.contains(t) != b.contains(t), "token {t} not conserved");
    }
    out.makespan
}

/// Deterministic single-lane **composed** workload, mixed pop+insert: an
/// MS-queue feeding an in-place hash table. Enqueues go through the
/// composed site as single-structure prefixes; dequeues atomically move
/// the head value into the table. (MS-queue + hashtable, not skiplist or
/// mound, per the determinism rules — no per-thread RNG in either.)
fn composed_pop_insert() -> u64 {
    let q = MsQueue::new_pto();
    let set = FSetHashTable::new(HashVariant::PtoInplace, 256);
    for i in 0..64 {
        q.enqueue(i);
    }
    pto_sim::clock::reset();
    let out = Sim::new(1).run(|_| {
        let site = Composed::new(
            vec![q.anchor(), set.anchor()],
            ComposeMode::Static(PtoPolicy::with_attempts(3)),
        );
        let mut rng = XorShift64::new(9);
        let mut next = 64u64;
        let mut popped = 0usize;
        for _ in 0..300 {
            if rng.chance(1, 2) {
                let node = q.compose_alloc(next);
                let via_prefix = site.run(
                    |tx| {
                        q.tx_enqueue_node(tx, node)?;
                        Ok(true)
                    },
                    || {
                        q.fallback_enqueue(node);
                        false
                    },
                );
                assert!(via_prefix, "single-lane enqueue must use the prefix");
                next += 1;
            } else {
                let got = site.run(
                    |tx| match q.tx_dequeue_raw(tx)? {
                        None => Ok(None),
                        Some((v, dummy)) => {
                            let fresh = set.tx_compose_update(tx, v, true)?;
                            Ok(Some((v, dummy, fresh)))
                        }
                    },
                    || q.fallback_dequeue().map(|v| (v, u32::MAX, set.insert(v))),
                );
                if let Some((v, dummy, fresh)) = got {
                    if dummy != u32::MAX {
                        q.compose_retire(dummy);
                    }
                    assert!(fresh, "value {v} moved into the set twice");
                    popped += 1;
                }
            }
        }
        assert!(
            site.stats.fast.get() > site.stats.fallback.get(),
            "composed pop+insert stream mostly left the prefix ({} fast vs {} fallback)",
            site.stats.fast.get(),
            site.stats.fallback.get()
        );
        assert_eq!(set.len(), popped, "pop+insert halves disagree");
    });
    out.makespan
}

const GOLDEN_PRIVATE_WORD_PTO: Golden = (24800, 400, 300, 0, 0, 100, 0, 0);
const GOLDEN_LIST_PTO_WHOLE: Golden = (255681, 353, 353, 0, 0, 0, 0, 0);
const GOLDEN_LIST_PTO_UPDATE: Golden = (257578, 201, 201, 0, 0, 0, 0, 0);
const GOLDEN_LIST_LOCKFREE: Golden = (289788, 0, 0, 0, 0, 0, 0, 0);
const GOLDEN_MINDICATOR_PTO: Golden = (132800, 800, 800, 0, 0, 0, 0, 0);
const GOLDEN_MINDICATOR_LOCKFREE: Golden = (371200, 0, 0, 0, 0, 0, 0, 0);
const GOLDEN_MSQUEUE_PTO: Golden = (67750, 564, 564, 0, 0, 0, 0, 0);
const GOLDEN_LANE_PRIVATE_64_HASWELL: Golden = (7836, 150, 150, 0, 0, 0, 0, 0);
const GOLDEN_LANE_PRIVATE_64_NUMAISH: Golden = (19156, 150, 150, 0, 0, 0, 0, 0);
// Note: `private_word_adaptive` equals `private_word_pto` exactly — on a
// conflict-free stream the self-tuning executor must add zero virtual cost.
const GOLDEN_PRIVATE_WORD_ADAPTIVE: Golden = (24800, 400, 300, 0, 0, 100, 0, 0);
const GOLDEN_BST_ADAPTIVE: Golden = (165066, 499, 499, 0, 0, 0, 0, 0);
const GOLDEN_MIDDLE_PATH_WORD: Golden = (4418, 82, 40, 2, 0, 0, 0, 40);
// Composed goldens (PR 10): recorded on the tree that introduced
// `pto_core::compose`; regenerate with PTO_GOLDEN_PRINT=1 if the compose
// wrapper's charged costs change on purpose.
const GOLDEN_COMPOSED_TRANSFER_HEAVY: Golden = (47108, 584, 431, 0, 0, 153, 0, 0);
const GOLDEN_COMPOSED_POP_INSERT: Golden = (96859, 472, 256, 0, 0, 216, 0, 0);

#[test]
fn golden_composed_transfer_heavy_1lane() {
    let _g = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let got = measure(composed_transfer_heavy);
    check("composed_transfer_heavy", got, GOLDEN_COMPOSED_TRANSFER_HEAVY);
    let again = measure(composed_transfer_heavy);
    assert_eq!(got, again, "composed transfer workload is not deterministic");
}

#[test]
fn golden_composed_pop_insert_1lane() {
    let _g = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let got = measure(composed_pop_insert);
    check("composed_pop_insert", got, GOLDEN_COMPOSED_POP_INSERT);
    let again = measure(composed_pop_insert);
    assert_eq!(got, again, "composed pop+insert workload is not deterministic");
}

#[test]
fn golden_private_word_adaptive_4lane() {
    let _g = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let got = measure(private_word_adaptive);
    check("private_word_adaptive", got, GOLDEN_PRIVATE_WORD_ADAPTIVE);
    let again = measure(private_word_adaptive);
    assert_eq!(got, again, "adaptive private-word workload is not deterministic");
}

#[test]
fn golden_bst_adaptive_1lane() {
    let _g = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let got = measure(bst_adaptive_workload);
    check("bst_adaptive", got, GOLDEN_BST_ADAPTIVE);
    let again = measure(bst_adaptive_workload);
    assert_eq!(got, again, "adaptive BST workload is not deterministic");
}

#[test]
fn golden_middle_path_word_1lane() {
    let _g = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let got = measure(middle_path_word);
    check("middle_path_word", got, GOLDEN_MIDDLE_PATH_WORD);
    let again = measure(middle_path_word);
    assert_eq!(got, again, "middle-path workload is not deterministic");
}

#[test]
fn golden_private_word_pto_4lane() {
    let _g = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let got = measure(private_word_pto);
    check("private_word_pto", got, GOLDEN_PRIVATE_WORD_PTO);
    // Also: re-running must reproduce itself exactly (determinism check
    // independent of the recorded constants).
    let again = measure(private_word_pto);
    assert_eq!(got, again, "private-word workload is not deterministic");
}

#[test]
fn golden_list_variants_1lane() {
    let _g = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let got = measure(|| {
        let l = HarrisList::new(ListVariant::PtoWhole);
        set_workload(&l, 400, 128, 42)
    });
    check("list_pto_whole", got, GOLDEN_LIST_PTO_WHOLE);

    let got = measure(|| {
        let l = HarrisList::new(ListVariant::PtoUpdate);
        set_workload(&l, 400, 128, 42)
    });
    check("list_pto_update", got, GOLDEN_LIST_PTO_UPDATE);

    let got = measure(|| {
        let l = HarrisList::new(ListVariant::LockFree);
        set_workload(&l, 400, 128, 42)
    });
    check("list_lockfree", got, GOLDEN_LIST_LOCKFREE);
}

#[test]
fn golden_mindicator_1lane() {
    let _g = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let got = measure(|| {
        let m = PtoMindicator::new(64);
        mindicator_workload(&m, 400, 4096, 3)
    });
    check("mindicator_pto", got, GOLDEN_MINDICATOR_PTO);

    let got = measure(|| {
        let m = LockFreeMindicator::new(64);
        mindicator_workload(&m, 400, 4096, 3)
    });
    check("mindicator_lockfree", got, GOLDEN_MINDICATOR_LOCKFREE);
}

#[test]
fn golden_lane_private_64lane_both_profiles() {
    let _g = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let haswell = measure(|| lane_private_64(CostProfile::Haswell));
    check("lane_private_64_haswell", haswell, GOLDEN_LANE_PRIVATE_64_HASWELL);
    let numa = measure(|| lane_private_64(CostProfile::NumaIsh));
    check("lane_private_64_numaish", numa, GOLDEN_LANE_PRIVATE_64_NUMAISH);
    // The remote-socket surcharge must be visible in the makespan (lanes
    // ≥ 8 pay it), while the HTM counters — all on socket-0 lane 0 — stay
    // identical across profiles.
    assert!(
        numa.0 > haswell.0,
        "NUMA-ish profile did not charge remote lanes more ({} vs {})",
        numa.0,
        haswell.0
    );
    assert_eq!(
        (numa.1, numa.2, numa.3, numa.4, numa.5, numa.6, numa.7),
        (haswell.1, haswell.2, haswell.3, haswell.4, haswell.5, haswell.6, haswell.7),
        "HTM counters must not depend on the cost profile"
    );
    // And re-running must reproduce itself exactly.
    let again = measure(|| lane_private_64(CostProfile::NumaIsh));
    assert_eq!(numa, again, "64-lane workload is not deterministic");
}

#[test]
fn golden_msqueue_1lane() {
    let _g = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let got = measure(|| {
        let q = MsQueue::new_pto();
        queue_workload(&q, 500, 7)
    });
    check("msqueue_pto", got, GOLDEN_MSQUEUE_PTO);
}
