//! Server-scale lane smoke tests (PR 7): the whole substrate — gate
//! scheduler, cost profiles, epoch registry, pools, hazard domains — must
//! hold together at 512 simultaneous lanes, far past the paper's 8-thread
//! testbed and past the old 128-entry thread-slot tables.
//!
//! These are liveness/invariant tests, not golden pins: 512 contending
//! lanes interleave nondeterministically, so we assert structural facts
//! (no panic, balances zero out, skew stays bounded) rather than exact
//! makespans. The deterministic 64-lane golden pins live in
//! `golden_makespan.rs`.

use pto_mem::{HazardDomain, Pool};
use pto_sim::{CostKind, CostProfile, Sim};

#[derive(Default)]
struct Node {
    v: pto_htm::TxWord,
}

#[test]
fn five_hundred_twelve_lanes_pin_alloc_and_protect() {
    const LANES: usize = 512;
    let pool: Pool<Node> = Pool::new();
    let dom = HazardDomain::new();
    let out = Sim {
        threads: LANES,
        quantum: 400,
        profile: CostProfile::NumaIsh,
    }
    .run(|lane| {
        // Each lane exercises every thread-slot-indexed subsystem: the
        // epoch registry (pin), the pool magazines (alloc/retire/free) and
        // a hazard lane (protect/clear) — all beyond slot 128 for most
        // lanes, which the flat tables this PR replaced could not seat.
        for round in 0..3u64 {
            let g = pto_mem::epoch::pin();
            let idx = pool.alloc();
            pool.get(idx).v.init(lane as u64 * 8 + round);
            dom.protect(0, idx);
            assert_eq!(pool.get(idx).v.peek(), lane as u64 * 8 + round);
            dom.clear(0);
            drop(g);
            if round % 2 == 0 {
                pool.free_now(idx);
            } else {
                pool.retire(idx);
            }
            pto_sim::charge(CostKind::Work);
        }
    });
    assert_eq!(out.per_thread.len(), LANES);
    assert!(out.makespan > 0);
    // Every lane allocated and released 3 slots; nothing may leak.
    assert_eq!(pool.live(), 0, "leaked pool slots at 512 lanes");
    assert_eq!(dom.active_hazards(), 0, "stale hazards at 512 lanes");
    // NUMA profile sanity at scale: socket-0 lanes pay the Haswell local
    // tariff, all other sockets the remote one, so a remote lane's clock
    // must be strictly ahead of its socket-0 twin running the same body.
    assert!(
        out.per_thread[8] > out.per_thread[0],
        "remote lane {} not slower than local lane {}",
        out.per_thread[8],
        out.per_thread[0]
    );
}

#[test]
fn conflict_free_512_lane_runs_are_deterministic_under_both_profiles() {
    const LANES: usize = 512;
    // Lane-private clock charges only: the gate paces the lanes but their
    // final clocks are pure per-lane sums, so any two runs must agree
    // bit-for-bit regardless of OS scheduling — at 512 lanes, under both
    // cost profiles.
    let run = |profile: CostProfile| {
        let out = Sim {
            threads: LANES,
            quantum: 300,
            profile,
        }
        .run(|lane| {
            for _ in 0..(10 + lane as u64 % 13) {
                pto_sim::charge(CostKind::Cas);
                pto_sim::charge(CostKind::SharedLoad);
            }
        });
        (out.makespan, out.per_thread)
    };
    for profile in [CostProfile::Haswell, CostProfile::NumaIsh] {
        let a = run(profile);
        let b = run(profile);
        assert_eq!(a, b, "512-lane rerun diverged under {profile:?}");
    }
    // And the profiles must genuinely differ once lanes leave socket 0.
    let h = run(CostProfile::Haswell);
    let n = run(CostProfile::NumaIsh);
    assert_eq!(h.1[..8], n.1[..8], "socket-0 lanes must match Haswell");
    assert!(n.1[8] > h.1[8], "remote lane not charged the NUMA tariff");
    assert!(n.0 > h.0, "NUMA makespan should exceed Haswell at 512 lanes");
}
