//! Per-variant abort-cause observability (end to end): two PTO variants
//! with *different* deterministic abort modes run interleaved in one
//! process, and each variant's own `PtoStats.causes` reports only its own
//! cause mix — while the process-global HTM counters see the union, the
//! scoped snapshot delta separates sequential regions.
//!
//! One test function on purpose: the scoped-snapshot half reads the
//! process-global HTM counters, which a concurrently running sibling test
//! would pollute.

use pto::bst::{Bst, BstVariant};
use pto::core::policy::PtoPolicy;
use pto::core::ConcurrentSet;
use pto::core::Quiescence;
use pto::mindicator::PtoMindicator;

#[test]
fn interleaved_variants_report_independent_cause_mixes() {
    // Variant A: chaos injection at 100% — every prefix attempt dies
    // Spurious, deterministically.
    let mindicator = PtoMindicator::with_policy(8, PtoPolicy::with_attempts(1).with_chaos(100));
    // Variant B: write cap 1 — every multi-write prefix dies Capacity,
    // deterministically.
    let bst = Bst::with_policies(
        BstVariant::Pto1,
        PtoPolicy::with_attempts(1).with_write_cap(1),
        PtoPolicy::with_attempts(1),
    );

    for k in 0..16u64 {
        mindicator.arrive(k + 1);
        bst.insert(k);
        mindicator.depart();
    }
    for k in 0..16u64 {
        assert!(bst.contains(k));
    }

    let m = &mindicator.stats;
    let b = &bst.stats1;
    // Each variant aborted — and only in its own bucket.
    assert!(m.causes.spurious.get() > 0, "mindicator never hit chaos");
    assert_eq!(m.causes.capacity.get(), 0, "capacity bled into mindicator");
    assert_eq!(m.causes.conflict.get(), 0);
    assert!(b.causes.capacity.get() > 0, "bst never hit the write cap");
    assert_eq!(b.causes.spurious.get(), 0, "chaos bled into bst");
    // Cause totals reconcile with the per-variant attempt counters.
    assert_eq!(m.causes.total(), m.aborted_attempts.get());
    assert_eq!(b.causes.total(), b.aborted_attempts.get());

    // Second half — the bench-harness attribution pattern: sequential
    // regions bracketed by global snapshots. Region 1 only aborts
    // Spurious; region 2 only Capacity; the deltas separate them exactly.
    let h0 = pto::htm::snapshot();
    let spurious = PtoMindicator::with_policy(8, PtoPolicy::with_attempts(1).with_chaos(100));
    spurious.arrive(3);
    spurious.depart();
    let region1 = pto::htm::snapshot().delta(&h0);

    let h1 = pto::htm::snapshot();
    let capped = Bst::with_policies(
        BstVariant::Pto1,
        PtoPolicy::with_attempts(1).with_write_cap(1),
        PtoPolicy::with_attempts(1),
    );
    capped.insert(1);
    let region2 = pto::htm::snapshot().delta(&h1);

    assert!(region1.aborts_spurious > 0);
    assert_eq!(region1.aborts_capacity, 0);
    assert!(region2.aborts_capacity > 0);
    assert_eq!(region2.aborts_spurious, 0);
}
