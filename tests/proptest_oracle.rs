//! Property-based differential tests: arbitrary operation sequences against
//! model oracles, for every structure and PTO variant.
//!
//! Runs on the in-tree proptest-lite harness (`pto_sim::proptest`): 64
//! shrink-capable cases per structure by default, deterministic from a fixed
//! seed, with `PTO_PROPTEST_CASES`/`PTO_PROPTEST_SEED` overrides. On failure
//! the harness prints the seed, the failing case index and a greedily
//! shrunk minimal operation sequence.

use pto::bst::{Bst, BstVariant};
use pto::core::{ConcurrentSet, FifoQueue, PriorityQueue, Quiescence};
use pto::hashtable::{FSetHashTable, HashVariant};
use pto::list::{HarrisList, ListVariant};
use pto::mound::Mound;
use pto::msqueue::MsQueue;
use pto::sim::proptest::{
    check, one_of, option_of, range_u64, range_usize, vec_of, Config, Strategy,
};
use pto::skiplist::{SkipListSet, SkipQueue};
use std::collections::{BTreeSet, BinaryHeap, VecDeque};

/// Cases per property: the differential suites' baseline (env can raise it).
fn cfg() -> Config {
    Config::with_cases(64)
}

#[derive(Clone, Debug)]
enum SetOp {
    Insert(u64),
    Remove(u64),
    Contains(u64),
}

fn set_ops(max_key: u64) -> impl Strategy<Value = Vec<SetOp>> {
    vec_of(
        one_of(vec![
            range_u64(0..max_key).map(SetOp::Insert).boxed(),
            range_u64(0..max_key).map(SetOp::Remove).boxed(),
            range_u64(0..max_key).map(SetOp::Contains).boxed(),
        ]),
        1..400,
    )
}

fn check_set(s: &dyn ConcurrentSet, ops: &[SetOp]) {
    let mut oracle = BTreeSet::new();
    for op in ops {
        match *op {
            SetOp::Insert(k) => assert_eq!(s.insert(k), oracle.insert(k), "insert {k}"),
            SetOp::Remove(k) => assert_eq!(s.remove(k), oracle.remove(&k), "remove {k}"),
            SetOp::Contains(k) => assert_eq!(s.contains(k), oracle.contains(&k), "contains {k}"),
        }
    }
    assert_eq!(s.len(), oracle.len());
}

#[test]
fn bst_all_variants_match_btreeset() {
    check(&cfg(), "bst_all_variants_match_btreeset", &set_ops(64), |ops| {
        for v in [BstVariant::LockFree, BstVariant::Pto1, BstVariant::Pto2, BstVariant::Pto1Pto2] {
            let t = Bst::new(v);
            check_set(&t, ops);
            t.check_structure().unwrap();
        }
    });
}

#[test]
fn skiplist_variants_match_btreeset() {
    check(&cfg(), "skiplist_variants_match_btreeset", &set_ops(64), |ops| {
        check_set(&SkipListSet::new_lockfree(), ops);
        check_set(&SkipListSet::new_pto(), ops);
    });
}

#[test]
fn hashtable_variants_match_btreeset() {
    check(&cfg(), "hashtable_variants_match_btreeset", &set_ops(64), |ops| {
        for v in [HashVariant::LockFree, HashVariant::Pto, HashVariant::PtoInplace] {
            check_set(&FSetHashTable::new(v, 2), ops);
        }
    });
}

#[test]
fn list_variants_match_btreeset() {
    // DESIGN.md D7: the Harris list trades PTO granularity (whole-operation
    // vs update-phase); all three variants must agree with the oracle.
    check(&cfg(), "list_variants_match_btreeset", &set_ops(64), |ops| {
        for v in [ListVariant::LockFree, ListVariant::PtoWhole, ListVariant::PtoUpdate] {
            check_set(&HarrisList::new(v), ops);
        }
    });
}

#[test]
fn msqueue_variants_match_vecdeque() {
    // DESIGN.md D6: the Michael–Scott queue (lock-free and with the PTO
    // front that elides double-checking/hazard upkeep) must stay FIFO.
    let ops = vec_of(
        one_of(vec![
            range_u64(0..1_000).map(Some).boxed(),
            pto::sim::proptest::just(None).boxed(),
        ]),
        1..400,
    );
    check(&cfg(), "msqueue_variants_match_vecdeque", &ops, |ops| {
        for q in [MsQueue::new_lockfree(), MsQueue::new_pto()] {
            let mut oracle: VecDeque<u64> = VecDeque::new();
            for op in ops {
                match op {
                    Some(v) => {
                        q.enqueue(*v);
                        oracle.push_back(*v);
                    }
                    None => assert_eq!(q.dequeue(), oracle.pop_front()),
                }
            }
            assert_eq!(q.len(), oracle.len());
            // Drain the residue in FIFO order.
            while let Some(want) = oracle.pop_front() {
                assert_eq!(q.dequeue(), Some(want));
            }
            assert!(q.is_empty());
        }
    });
}

#[test]
fn pq_variants_match_binaryheap() {
    let ops = vec_of(option_of(range_u64(0..1_000)), 1..300);
    check(&cfg(), "pq_variants_match_binaryheap", &ops, |ops| {
        let qs: Vec<Box<dyn PriorityQueue>> = vec![
            Box::new(Mound::new_lockfree(12)),
            Box::new(Mound::new_pto(12)),
            Box::new(SkipQueue::new_lockfree()),
            Box::new(SkipQueue::new_pto()),
        ];
        for q in &qs {
            let mut oracle: BinaryHeap<std::cmp::Reverse<u64>> = BinaryHeap::new();
            for op in ops {
                match op {
                    Some(k) => {
                        q.push(*k);
                        oracle.push(std::cmp::Reverse(*k));
                    }
                    None => assert_eq!(q.pop_min(), oracle.pop().map(|r| r.0)),
                }
            }
            // Drain and compare the residue.
            let mut rest = Vec::new();
            while let Some(v) = q.pop_min() {
                rest.push(v);
            }
            let mut want: Vec<u64> = oracle.into_sorted_vec().into_iter().map(|r| r.0).collect();
            want.reverse(); // into_sorted_vec on Reverse yields descending keys
            assert_eq!(rest, want);
        }
    });
}

#[test]
fn mindicator_quiescent_min_matches() {
    // Sequential arrive/depart pairs: after arrive(v) the min is ≤ v;
    // after the matching depart the tree must be idle again.
    let values = vec_of(range_u64(0..10_000), 1..32);
    check(&cfg(), "mindicator_quiescent_min_matches", &values, |values| {
        let m = pto::mindicator::PtoMindicator::new(64);
        for &v in values {
            m.arrive(v);
            assert!(m.query() <= v);
            m.depart();
            assert_eq!(m.query(), u64::MAX);
        }
    });
}

#[test]
fn htm_transactions_apply_all_or_nothing() {
    let input = (
        vec_of((range_usize(0..16), range_u64(0..1_000)), 1..24),
        option_of(range_usize(0..24)),
    );
    check(&cfg(), "htm_transactions_apply_all_or_nothing", &input, |case| {
        let (writes, abort_at) = case;
        use pto::htm::{transaction, TxWord};
        let words: Vec<TxWord> = (0..16).map(|_| TxWord::new(0)).collect();
        let before: Vec<u64> = words.iter().map(|w| w.peek()).collect();
        let r = transaction(|tx| {
            for (i, (slot, val)) in writes.iter().enumerate() {
                if Some(i) == *abort_at {
                    return Err(tx.abort(7));
                }
                tx.write(&words[*slot], *val)?;
            }
            Ok(())
        });
        let after: Vec<u64> = words.iter().map(|w| w.peek()).collect();
        match r {
            Ok(()) => {
                // Last write per slot wins.
                let mut want = before.clone();
                for (slot, val) in writes {
                    if abort_at.is_none() || writes.len() <= abort_at.unwrap() {
                        want[*slot] = *val;
                    }
                }
                if abort_at.is_none() || abort_at.unwrap() >= writes.len() {
                    assert_eq!(after, want);
                }
            }
            Err(_) => assert_eq!(after, before, "aborted tx leaked writes"),
        }
    });
}
