//! Property-based differential tests: arbitrary operation sequences against
//! model oracles, for every structure and PTO variant.

use proptest::prelude::*;
use pto::bst::{Bst, BstVariant};
use pto::core::{ConcurrentSet, PriorityQueue, Quiescence};
use pto::hashtable::{FSetHashTable, HashVariant};
use pto::mound::Mound;
use pto::skiplist::{SkipListSet, SkipQueue};
use std::collections::{BTreeSet, BinaryHeap};

#[derive(Clone, Debug)]
enum SetOp {
    Insert(u64),
    Remove(u64),
    Contains(u64),
}

fn set_ops(max_key: u64) -> impl Strategy<Value = Vec<SetOp>> {
    prop::collection::vec(
        prop_oneof![
            (0..max_key).prop_map(SetOp::Insert),
            (0..max_key).prop_map(SetOp::Remove),
            (0..max_key).prop_map(SetOp::Contains),
        ],
        1..400,
    )
}

fn check_set(s: &dyn ConcurrentSet, ops: &[SetOp]) {
    let mut oracle = BTreeSet::new();
    for op in ops {
        match *op {
            SetOp::Insert(k) => assert_eq!(s.insert(k), oracle.insert(k), "insert {k}"),
            SetOp::Remove(k) => assert_eq!(s.remove(k), oracle.remove(&k), "remove {k}"),
            SetOp::Contains(k) => assert_eq!(s.contains(k), oracle.contains(&k), "contains {k}"),
        }
    }
    assert_eq!(s.len(), oracle.len());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn bst_all_variants_match_btreeset(ops in set_ops(64)) {
        for v in [BstVariant::LockFree, BstVariant::Pto1, BstVariant::Pto2, BstVariant::Pto1Pto2] {
            let t = Bst::new(v);
            check_set(&t, &ops);
            t.check_structure().unwrap();
        }
    }

    #[test]
    fn skiplist_variants_match_btreeset(ops in set_ops(64)) {
        check_set(&SkipListSet::new_lockfree(), &ops);
        check_set(&SkipListSet::new_pto(), &ops);
    }

    #[test]
    fn hashtable_variants_match_btreeset(ops in set_ops(64)) {
        for v in [HashVariant::LockFree, HashVariant::Pto, HashVariant::PtoInplace] {
            check_set(&FSetHashTable::new(v, 2), &ops);
        }
    }

    #[test]
    fn pq_variants_match_binaryheap(ops in prop::collection::vec(
        prop_oneof![
            (0..1_000u64).prop_map(Some),
            Just(None),
        ], 1..300))
    {
        let qs: Vec<Box<dyn PriorityQueue>> = vec![
            Box::new(Mound::new_lockfree(12)),
            Box::new(Mound::new_pto(12)),
            Box::new(SkipQueue::new_lockfree()),
            Box::new(SkipQueue::new_pto()),
        ];
        for q in &qs {
            let mut oracle: BinaryHeap<std::cmp::Reverse<u64>> = BinaryHeap::new();
            for op in &ops {
                match op {
                    Some(k) => { q.push(*k); oracle.push(std::cmp::Reverse(*k)); }
                    None => assert_eq!(q.pop_min(), oracle.pop().map(|r| r.0)),
                }
            }
            // Drain and compare the residue.
            let mut rest = Vec::new();
            while let Some(v) = q.pop_min() { rest.push(v); }
            let mut want: Vec<u64> = oracle.into_sorted_vec().into_iter().map(|r| r.0).collect();
            want.reverse(); // into_sorted_vec on Reverse yields descending keys
            assert_eq!(rest, want);
        }
    }

    #[test]
    fn mindicator_quiescent_min_matches(values in prop::collection::vec(0..10_000u64, 1..32)) {
        // Sequential arrive/depart pairs: after arrive(v) the min is ≤ v;
        // after the matching depart the tree must be idle again.
        let m = pto::mindicator::PtoMindicator::new(64);
        for &v in &values {
            m.arrive(v);
            prop_assert!(m.query() <= v);
            m.depart();
            prop_assert_eq!(m.query(), u64::MAX);
        }
    }

    #[test]
    fn htm_transactions_apply_all_or_nothing(
        writes in prop::collection::vec((0..16usize, 0..1_000u64), 1..24),
        abort_at in prop::option::of(0..24usize),
    ) {
        use pto::htm::{transaction, TxWord};
        let words: Vec<TxWord> = (0..16).map(|_| TxWord::new(0)).collect();
        let before: Vec<u64> = words.iter().map(|w| w.peek()).collect();
        let r = transaction(|tx| {
            for (i, (slot, val)) in writes.iter().enumerate() {
                if Some(i) == abort_at {
                    return Err(tx.abort(7));
                }
                tx.write(&words[*slot], *val)?;
            }
            Ok(())
        });
        let after: Vec<u64> = words.iter().map(|w| w.peek()).collect();
        match r {
            Ok(()) => {
                // Last write per slot wins.
                let mut want = before.clone();
                for (slot, val) in &writes {
                    if abort_at.is_none() || writes.len() <= abort_at.unwrap() {
                        want[*slot] = *val;
                    }
                }
                if abort_at.is_none() || abort_at.unwrap() >= writes.len() {
                    prop_assert_eq!(after, want);
                }
            }
            Err(_) => prop_assert_eq!(after, before, "aborted tx leaked writes"),
        }
    }
}
