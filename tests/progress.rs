//! Progress-preservation tests (Theorems 2 and 3): the prefix transaction
//! may always fail, and operations must still complete through the
//! untouched lock-free fallback in a bounded number of attempts.

use pto::core::policy::{pto, PtoPolicy, PtoStats};
use pto::core::ConcurrentSet;
use pto::htm::{AbortCause, TxResult, TxWord};

#[test]
fn attempts_are_bounded_per_operation() {
    // A prefix that always explicitly aborts consumes exactly one attempt
    // (permanent abort) before the fallback — never more than the budget.
    let stats = PtoStats::new();
    let policy = PtoPolicy::with_attempts(7);
    for i in 0..1_000u64 {
        let v = pto(
            &policy,
            &stats,
            |tx| -> TxResult<u64> { Err(tx.abort(1)) },
            || i,
        );
        assert_eq!(v, i);
    }
    assert_eq!(stats.fallback.get(), 1_000);
    assert!(stats.aborted_attempts.get() <= 7_000);
}

#[test]
fn conflict_retries_respect_the_budget() {
    let mut stubborn = PtoPolicy::with_attempts(5);
    stubborn.stop_on_permanent = false;
    let stats = PtoStats::new();
    let v = pto(
        &stubborn,
        &stats,
        |tx| -> TxResult<&str> { Err(tx.abort(2)) },
        || "fallback",
    );
    assert_eq!(v, "fallback");
    assert_eq!(stats.aborted_attempts.get(), 5, "must stop at the budget");
}

#[test]
fn capacity_starved_htm_degrades_to_lockfree_semantics() {
    // §7: "our technique is oblivious to the capacity of the underlying
    // HTM" — with a 1-word write budget every multi-write prefix fails and
    // the structure must behave exactly like its lock-free baseline.
    use pto::bst::{Bst, BstVariant};
    let t = Bst::with_policies(
        BstVariant::Pto1Pto2,
        PtoPolicy::with_attempts(2).with_write_cap(1),
        PtoPolicy::with_attempts(16).with_write_cap(1),
    );
    for k in 0..500 {
        assert!(t.insert(k));
    }
    for k in 0..500 {
        assert!(t.contains(k));
    }
    for k in (0..500).step_by(2) {
        assert!(t.remove(k));
    }
    assert_eq!(t.len(), 250);
    // Update prefixes (2+ writes) can never commit under a 1-write cap —
    // only the 500 read-only lookups may have taken the fast path.
    assert_eq!(t.stats1.fast.get(), 500);
    assert!(t.stats1.fallback.get() >= 750, "updates must have fallen back");
}

#[test]
fn explicit_abort_reports_its_code() {
    let r: Result<(), AbortCause> = pto_htm::transaction(|tx| Err(tx.abort(0x2A)));
    assert_eq!(r.unwrap_err(), AbortCause::Explicit(0x2A));
}

#[test]
fn doomed_prefix_makes_global_progress_under_contention() {
    // 4 threads, all prefixes doomed, one shared word: the lock-free
    // fallback must still complete every operation.
    let w = TxWord::new(0);
    let policy = PtoPolicy::with_attempts(3);
    std::thread::scope(|s| {
        for _ in 0..4 {
            let w = &w;
            let policy = &policy;
            s.spawn(move || {
                let stats = PtoStats::new();
                for _ in 0..2_500 {
                    pto(
                        policy,
                        &stats,
                        |tx| -> TxResult<()> { Err(tx.abort(9)) },
                        || {
                            w.fetch_add(1, std::sync::atomic::Ordering::AcqRel);
                        },
                    );
                }
                assert_eq!(stats.fallback.get(), 2_500);
            });
        }
    });
    assert_eq!(w.peek(), 10_000);
}
