//! Trace-derived correctness invariants (PR 3 satellite): the event
//! stream must witness the executor's contracts.
//!
//! * Committed RMW transactions on one shared word are serialized by the
//!   orec commit lock: their `(rv, wv]` version intervals are pairwise
//!   disjoint, and their begin→commit spans do not overlap in virtual
//!   cycle time beyond the gate scheduler's bounded skew.
//! * Under 100% failure injection, the fallback is entered exactly when
//!   the retry budget is exhausted — never earlier, never skipped.

use pto_core::policy::{pto, PtoPolicy, PtoStats};
use pto_htm::TxWord;
use pto_sim::trace::{EventKind, TraceSession};
use pto_sim::Sim;
use std::sync::atomic::Ordering;
use std::sync::Mutex;

// The trace collector and the virtual clock are process-global; tests in
// this binary run on parallel threads, so serialize armed sections.
static SERIAL: Mutex<()> = Mutex::new(());

/// Committed spans as (begin_ts, rv, commit_ts, wv), extracted per track
/// with a pending-begin state machine (aborted attempts clear it).
fn committed_spans(trace: &pto_sim::trace::Trace) -> Vec<(u64, u64, u64, u64)> {
    let mut spans = Vec::new();
    for t in &trace.tracks {
        let mut pending: Option<(u64, u64)> = None;
        for e in &t.events {
            match e.kind {
                EventKind::TxBegin { rv } => pending = Some((e.ts, rv)),
                EventKind::TxAbort { .. } => pending = None,
                EventKind::TxCommit { wv } => {
                    if let Some((ts0, rv)) = pending.take() {
                        spans.push((ts0, rv, e.ts, wv));
                    }
                }
                _ => {}
            }
        }
    }
    spans
}

#[test]
fn committed_rmw_spans_on_one_word_serialize() {
    let _g = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    // With quantum = 1 a lane can lead a running peer by at most roughly
    // one max-size charge plus the quantum; add the commit tail (the
    // cycles between the version bump and the commit event) for the
    // cycle-time tolerance. The version-interval check below is exact.
    const SKEW: u64 = 128;
    let session = TraceSession::arm();
    let shared = TxWord::new(0);
    // Per-lane private reads pad every span well past SKEW cycles.
    let privs: Vec<Vec<TxWord>> = (0..4)
        .map(|_| (0..12).map(|_| TxWord::new(7)).collect())
        .collect();
    pto_sim::clock::reset();
    Sim {
        threads: 4,
        quantum: 1,
        profile: pto_sim::CostProfile::Haswell,
    }
    .run(|lane| {
        let policy = PtoPolicy::with_attempts(64);
        let stats = PtoStats::new();
        for _ in 0..50 {
            pto(
                &policy,
                &stats,
                |tx| {
                    for w in &privs[lane] {
                        tx.read(w)?;
                    }
                    let v = tx.read(&shared)?;
                    tx.write(&shared, v + 1)?;
                    Ok(())
                },
                || {
                    // Lock-free fallback RMW (no trace span; rare).
                    loop {
                        let v = shared.load(Ordering::Acquire);
                        if shared.cas(v, v + 1) {
                            break;
                        }
                    }
                },
            );
        }
    });
    let trace = session.drain();

    let mut spans = committed_spans(&trace);
    assert!(
        spans.len() >= 150,
        "expected most of the 200 RMWs to commit transactionally, got {}",
        spans.len()
    );
    // Write versions come from the GVC bump: unique per committed writer.
    let mut wvs: Vec<u64> = spans.iter().map(|s| s.3).collect();
    wvs.sort_unstable();
    wvs.dedup();
    assert_eq!(wvs.len(), spans.len(), "write versions must be unique");
    // In wv order, each commit's read snapshot must postdate the previous
    // commit's write version: the (rv, wv] intervals are disjoint.
    spans.sort_by_key(|s| s.3);
    for pair in spans.windows(2) {
        let (prev, next) = (&pair[0], &pair[1]);
        assert!(
            next.1 >= prev.3,
            "commit wv={} read snapshot rv={} predates earlier commit wv={}: \
             spans on one word overlap in version time",
            next.3,
            next.1,
            prev.3
        );
        // And in cycle time the spans are disjoint up to bounded skew.
        let overlap = prev.2.saturating_sub(next.0);
        assert!(
            overlap <= SKEW,
            "spans overlap {} cycles in virtual time (prev commit at {}, \
             next begin at {})",
            overlap,
            prev.2,
            next.0
        );
    }
}

#[test]
fn fallback_entered_exactly_when_budget_exhausted() {
    let _g = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let session = TraceSession::arm();
    pto_sim::clock::reset();
    let w = TxWord::new(0);
    let policy = PtoPolicy::with_attempts(3).with_chaos(100);
    let stats = PtoStats::new();
    const OPS: usize = 10;
    for _ in 0..OPS {
        pto(
            &policy,
            &stats,
            |tx| {
                let v = tx.read(&w)?;
                tx.write(&w, v + 1)?;
                Ok(())
            },
            || {
                let v = w.load(Ordering::Acquire);
                w.store(v + 1, Ordering::Release);
            },
        );
    }
    let trace = session.drain();

    let mut tracks: Vec<_> = trace.tracks.iter().collect();
    tracks.sort_by_key(|t| t.ordinal);
    let seq: String = tracks
        .iter()
        .flat_map(|t| t.events.iter())
        .filter_map(|e| match e.kind {
            EventKind::TxBegin { .. } => Some('B'),
            EventKind::TxCommit { .. } => Some('C'),
            EventKind::TxAbort { .. } => Some('A'),
            EventKind::FallbackEnter => Some('F'),
            EventKind::FallbackExit => Some('X'),
            _ => None,
        })
        .collect();
    // Chaos at 100% aborts all 3 attempts of every op, then — and only
    // then — the fallback runs. No commits anywhere.
    assert_eq!(seq, "BABABAFX".repeat(OPS), "retry/fallback order violated");
    assert_eq!(w.peek(), OPS as u64, "every op fell back exactly once");
}
