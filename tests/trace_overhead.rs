//! Zero-overhead regression (PR 3 satellite): tracing that is armed never
//! charges the virtual clock, and tracing that is disarmed is a single
//! relaxed load — so traced, disarmed, and never-traced runs of a
//! deterministic workload must produce *bit-identical* virtual-time
//! results.
//!
//! The workload avoids every nondeterminism source on purpose: no chaos
//! injection and no transient aborts (both draw from order-seeded RNGs),
//! and no cross-lane conflicts. Lane clocks advance only by their own
//! charges, so the makespan is a pure function of the per-lane op
//! sequences.

use pto_core::policy::{pto, PtoPolicy, PtoStats};
use pto_htm::TxWord;
use pto_sim::trace::{self, EventKind, TraceSession};
use pto_sim::{charge, CostKind, Sim};
use std::sync::Mutex;

static SERIAL: Mutex<()> = Mutex::new(());

/// Deterministic 4-lane workload: lane 0 runs private-word RMW
/// transactions plus explicit-abort→fallback ops (covering the tx,
/// abort, and fallback emit sites); lanes 1–3 run epoch pin/unpin loops
/// with a fixed work charge. Returns (makespan, ops/ms).
fn workload() -> (u64, f64) {
    pto_sim::clock::reset();
    let word = TxWord::new(0);
    let out = Sim::new(4).run(|lane| {
        if lane == 0 {
            let policy = PtoPolicy::with_attempts(3);
            let stats = PtoStats::new();
            for _ in 0..300 {
                pto(
                    &policy,
                    &stats,
                    |tx| {
                        let v = tx.read(&word)?;
                        tx.write(&word, v + 1)?;
                        Ok(())
                    },
                    || unreachable!("private word: the prefix cannot abort"),
                );
            }
            for _ in 0..100 {
                // Explicit abort is permanent: no retry, no backoff RNG —
                // straight to the fallback, deterministically.
                pto(&policy, &stats, |tx| Err::<(), _>(tx.abort(1)), || ());
            }
        } else {
            for _ in 0..400 {
                let _g = pto_mem::epoch::pin();
                pto_sim::charge_n(CostKind::Work, 5);
            }
        }
    });
    (out.makespan, pto_sim::ops_per_ms(400, out.makespan))
}

#[test]
fn disarmed_tracing_reproduces_untraced_results_exactly() {
    let _g = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let (m_before, t_before) = workload();

    let session = TraceSession::arm();
    let (m_armed, t_armed) = workload();
    let captured = session.drain();
    assert!(captured.events() > 0, "armed run captured nothing");

    let (m_after, t_after) = workload();

    // Armed tracing emits events but never charges the clock; disarmed
    // tracing is a dead relaxed load. Virtual time is identical in all
    // three configurations, down to the f64 bit pattern.
    assert_eq!(m_before, m_armed, "arming tracing changed the makespan");
    assert_eq!(m_before, m_after, "a past session perturbs later runs");
    assert_eq!(t_before.to_bits(), t_armed.to_bits());
    assert_eq!(t_before.to_bits(), t_after.to_bits());
}

#[test]
fn disarmed_emit_sites_charge_nothing() {
    let _g = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    // A charge loop with no emit calls at all — the "never compiled in"
    // baseline...
    pto_sim::clock::reset();
    for _ in 0..1_000 {
        charge(CostKind::Work);
    }
    let plain = pto_sim::now();
    // ...must land on the same clock as the same loop with a disarmed
    // emit per iteration.
    pto_sim::clock::reset();
    for _ in 0..1_000 {
        charge(CostKind::Work);
        trace::emit(EventKind::EpochPin);
    }
    assert_eq!(pto_sim::now(), plain);
}
