//! Differential testing across every set implementation and variant: the
//! same operation stream must produce the same abstract set everywhere.

use pto::bst::{Bst, BstVariant};
use pto::core::ConcurrentSet;
use pto::hashtable::{FSetHashTable, HashVariant};
use pto::sim::rng::XorShift64;
use pto::skiplist::SkipListSet;
use std::collections::BTreeSet;

fn all_sets() -> Vec<(String, Box<dyn ConcurrentSet>)> {
    let mut v: Vec<(String, Box<dyn ConcurrentSet>)> = Vec::new();
    for var in [
        BstVariant::LockFree,
        BstVariant::Pto1,
        BstVariant::Pto2,
        BstVariant::Pto1Pto2,
    ] {
        v.push((format!("bst-{var:?}"), Box::new(Bst::new(var))));
    }
    v.push(("skip-lf".into(), Box::new(SkipListSet::new_lockfree())));
    v.push(("skip-pto".into(), Box::new(SkipListSet::new_pto())));
    for var in [HashVariant::LockFree, HashVariant::Pto, HashVariant::PtoInplace] {
        v.push((
            format!("hash-{var:?}"),
            Box::new(FSetHashTable::new(var, 8)),
        ));
    }
    v
}

#[test]
fn identical_single_threaded_histories() {
    let sets = all_sets();
    let mut oracle = BTreeSet::new();
    let mut rng = XorShift64::new(20260706);
    for _ in 0..3_000 {
        let k = rng.below(200);
        match rng.below(3) {
            0 => {
                let want = oracle.insert(k);
                for (name, s) in &sets {
                    assert_eq!(s.insert(k), want, "{name}: insert {k}");
                }
            }
            1 => {
                let want = oracle.remove(&k);
                for (name, s) in &sets {
                    assert_eq!(s.remove(k), want, "{name}: remove {k}");
                }
            }
            _ => {
                let want = oracle.contains(&k);
                for (name, s) in &sets {
                    assert_eq!(s.contains(k), want, "{name}: contains {k}");
                }
            }
        }
    }
    for (name, s) in &sets {
        assert_eq!(s.len(), oracle.len(), "{name}: final size");
    }
}

#[test]
fn concurrent_final_states_agree() {
    // Partitioned key ranges per thread make the final state deterministic
    // even under concurrency; every implementation must converge to it.
    for (name, s) in all_sets() {
        std::thread::scope(|sc| {
            for t in 0..4u64 {
                let s = &s;
                sc.spawn(move || {
                    let lo = t * 250;
                    for k in lo..lo + 250 {
                        assert!(s.insert(k));
                    }
                    // Remove the odd keys again.
                    for k in (lo..lo + 250).filter(|k| k % 2 == 1) {
                        assert!(s.remove(k));
                    }
                });
            }
        });
        assert_eq!(s.len(), 500, "{name}");
        for k in 0..1000 {
            assert_eq!(s.contains(k), k % 2 == 0, "{name}: key {k}");
        }
    }
}

#[test]
fn pq_implementations_agree() {
    use pto::core::PriorityQueue;
    use pto::mound::Mound;
    use pto::skiplist::SkipQueue;
    let qs: Vec<(&str, Box<dyn PriorityQueue>)> = vec![
        ("mound-lf", Box::new(Mound::new_lockfree(14))),
        ("mound-pto", Box::new(Mound::new_pto(14))),
        ("skipq-lf", Box::new(SkipQueue::new_lockfree())),
        ("skipq-pto", Box::new(SkipQueue::new_pto())),
    ];
    let mut rng = XorShift64::new(777);
    let keys: Vec<u64> = (0..2_000).map(|_| rng.below(10_000)).collect();
    for (_, q) in &qs {
        for &k in &keys {
            q.push(k);
        }
    }
    let mut sorted = keys.clone();
    sorted.sort_unstable();
    for (name, q) in &qs {
        for (i, &want) in sorted.iter().enumerate() {
            assert_eq!(q.pop_min(), Some(want), "{name}: pop #{i}");
        }
        assert_eq!(q.pop_min(), None, "{name}: not drained");
    }
}
