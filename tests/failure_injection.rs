//! Failure injection: run every PTO'd structure on an HTM that
//! spontaneously aborts a third of all transactions (the way flaky
//! best-effort hardware does), and require full correctness — the
//! methodology's whole premise is that the prefix may fail at any time
//! for any reason.

use pto::core::policy::PtoPolicy;
use pto::core::{ConcurrentSet, PriorityQueue};
use pto::sim::rng::XorShift64;
use std::collections::BTreeSet;

const CHAOS: u8 = 33;

fn chaotic(attempts: u32) -> PtoPolicy {
    PtoPolicy::with_attempts(attempts).with_chaos(CHAOS)
}

fn set_oracle_run(s: &dyn ConcurrentSet, seed: u64, ops: usize, range: u64) {
    let mut oracle = BTreeSet::new();
    let mut rng = XorShift64::new(seed);
    for _ in 0..ops {
        let k = rng.below(range);
        match rng.below(3) {
            0 => assert_eq!(s.insert(k), oracle.insert(k), "insert {k}"),
            1 => assert_eq!(s.remove(k), oracle.remove(&k), "remove {k}"),
            _ => assert_eq!(s.contains(k), oracle.contains(&k), "contains {k}"),
        }
    }
    assert_eq!(s.len(), oracle.len());
}

#[test]
fn bst_is_correct_under_spurious_aborts() {
    let t = pto::bst::Bst::with_policies(
        pto::bst::BstVariant::Pto1Pto2,
        chaotic(2),
        chaotic(16),
    );
    set_oracle_run(&t, 1, 3_000, 128);
    t.check_structure().unwrap();
    let h = pto::htm::snapshot();
    assert!(h.aborts_spurious > 0, "chaos never struck");
}

#[test]
fn skiplist_is_correct_under_spurious_aborts() {
    let s = pto::skiplist::SkipListSet::new_pto_with(chaotic(3));
    set_oracle_run(&s, 2, 3_000, 128);
}

#[test]
fn hashtable_is_correct_under_spurious_aborts() {
    let t = pto::hashtable::FSetHashTable::with_policy(
        pto::hashtable::HashVariant::PtoInplace,
        4,
        chaotic(3),
    );
    set_oracle_run(&t, 3, 3_000, 256);
}

#[test]
fn list_is_correct_under_spurious_aborts() {
    for v in [pto::list::ListVariant::PtoWhole, pto::list::ListVariant::PtoUpdate] {
        let l = pto::list::HarrisList::with_policy(v, chaotic(3));
        set_oracle_run(&l, 4, 2_000, 64);
    }
}

#[test]
fn mound_is_correct_under_spurious_aborts() {
    let m = pto::mound::Mound::new_pto_with(14, chaotic(4));
    let mut oracle: std::collections::BinaryHeap<std::cmp::Reverse<u64>> = Default::default();
    let mut rng = XorShift64::new(5);
    for _ in 0..3_000 {
        if rng.chance(1, 2) {
            let v = rng.below(10_000);
            m.push(v);
            oracle.push(std::cmp::Reverse(v));
        } else {
            assert_eq!(m.pop_min(), oracle.pop().map(|r| r.0));
        }
    }
    m.check_mound_property().unwrap();
}

#[test]
fn msqueue_is_correct_under_spurious_aborts() {
    use pto::core::traits::FifoQueue;
    let q = pto::msqueue::MsQueue::new_pto_with(chaotic(3));
    let mut oracle = std::collections::VecDeque::new();
    let mut rng = XorShift64::new(6);
    for _ in 0..4_000 {
        if rng.chance(3, 5) {
            let v = rng.next_u64();
            q.enqueue(v);
            oracle.push_back(v);
        } else {
            assert_eq!(q.dequeue(), oracle.pop_front());
        }
    }
}

#[test]
fn mindicator_is_correct_under_spurious_aborts() {
    use pto::core::Quiescence;
    let m = pto::mindicator::PtoMindicator::with_policy(16, chaotic(3));
    let mut rng = XorShift64::new(7);
    for _ in 0..2_000 {
        let v = rng.below(100_000);
        m.arrive(v);
        assert!(m.query() <= v);
        m.depart();
        assert_eq!(m.query(), u64::MAX);
    }
}

#[test]
fn concurrent_chaos_stress_converges() {
    // 4 threads on the composed BST with heavy chaos; the final state must
    // be consistent with a quiescent walk.
    let t = pto::bst::Bst::with_policies(
        pto::bst::BstVariant::Pto1Pto2,
        chaotic(2),
        chaotic(16),
    );
    std::thread::scope(|s| {
        for th in 0..4u64 {
            let t = &t;
            s.spawn(move || {
                let mut rng = XorShift64::new(th + 100);
                for _ in 0..2_000 {
                    let k = rng.below(96);
                    if rng.chance(1, 2) {
                        t.insert(k);
                    } else {
                        t.remove(k);
                    }
                }
            });
        }
    });
    t.check_structure().unwrap();
    let mut count = 0;
    for k in 0..96 {
        if t.contains(k) {
            count += 1;
        }
    }
    assert_eq!(t.len(), count);
}
