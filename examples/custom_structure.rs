//! Applying the PTO methodology to *your own* structure, step by step.
//!
//! The structure: a lock-free min/max/sum statistics register, where
//! updates simulate a multi-word atomic update the classic way — a version
//! counter with retry (odd = update in progress). PTO replaces the whole
//! protocol with one prefix transaction; readers and the lock-free
//! fallback interoperate with it freely.
//!
//! ```sh
//! cargo run --release --example custom_structure
//! ```

use pto::core::policy::{pto, PtoPolicy, PtoStats};
use pto::htm::{TxResult, TxWord, Txn};
use pto::sim::rng::XorShift64;

/// A statistics register: (count, sum, min, max) updated atomically.
struct Stats {
    version: TxWord, // seqlock-style: odd while an update is in flight
    count: TxWord,
    sum: TxWord,
    min: TxWord,
    max: TxWord,
    policy: PtoPolicy,
    pto_stats: PtoStats,
}

impl Stats {
    fn new() -> Self {
        Stats {
            version: TxWord::new(0),
            count: TxWord::new(0),
            sum: TxWord::new(0),
            min: TxWord::new(u64::MAX),
            max: TxWord::new(0),
            policy: PtoPolicy::with_attempts(3),
            pto_stats: PtoStats::new(),
        }
    }

    /// Step 1 (§2.2): the original lock-free code — acquire the version
    /// word (odd), write the fields, release (even). Readers retry across
    /// odd/changed versions.
    fn record_lockfree(&self, v: u64) {
        use std::sync::atomic::Ordering::*;
        loop {
            let ver = self.version.load(Acquire);
            if ver % 2 == 1 {
                std::hint::spin_loop();
                continue;
            }
            if self.version.compare_exchange(ver, ver + 1, SeqCst).is_err() {
                continue;
            }
            // We own the register; intermediate states are visible but
            // readers reject them via the odd version.
            let c = self.count.load(Acquire);
            self.count.store(c + 1, Release);
            let s = self.sum.load(Acquire);
            self.sum.store(s + v, Release);
            let mn = self.min.load(Acquire);
            if v < mn {
                self.min.store(v, Release);
            }
            let mx = self.max.load(Acquire);
            if v > mx {
                self.max.store(v, Release);
            }
            self.version.store(ver + 2, SeqCst);
            return;
        }
    }

    /// Step 2 (§2.3): the mechanically-optimized prefix — the CAS becomes
    /// a read+branch, the version never goes odd (no intermediate states,
    /// so the odd/even protocol collapses to a single +2), fences elided.
    fn record_prefix<'e>(&'e self, tx: &mut Txn<'e>, v: u64) -> TxResult<()> {
        let ver = tx.read(&self.version)?;
        if ver % 2 == 1 {
            // Step 3 (§2.4): an in-flight lock-free updater — abort to the
            // fallback instead of waiting inside the transaction.
            return Err(tx.abort(pto::core::ABORT_HELP));
        }
        let c = tx.read(&self.count)?;
        tx.write(&self.count, c + 1)?;
        let s = tx.read(&self.sum)?;
        tx.write(&self.sum, s + v)?;
        let mn = tx.read(&self.min)?;
        if v < mn {
            tx.write(&self.min, v)?;
        }
        let mx = tx.read(&self.max)?;
        if v > mx {
            tx.write(&self.max, v)?;
        }
        tx.write(&self.version, ver + 2)?;
        tx.fence();
        Ok(())
    }

    /// The PTO'd operation: Definition 1's optimized superblock.
    fn record(&self, v: u64) {
        pto(
            &self.policy,
            &self.pto_stats,
            |tx| self.record_prefix(tx, v),
            || self.record_lockfree(v),
        );
    }

    /// Consistent snapshot via the version word.
    fn snapshot(&self) -> (u64, u64, u64, u64) {
        use std::sync::atomic::Ordering::*;
        loop {
            let v1 = self.version.load(Acquire);
            if v1 % 2 == 1 {
                std::hint::spin_loop();
                continue;
            }
            let snap = (
                self.count.load(Acquire),
                self.sum.load(Acquire),
                self.min.load(Acquire),
                self.max.load(Acquire),
            );
            if self.version.load(Acquire) == v1 {
                return snap;
            }
        }
    }
}

fn main() {
    let st = Stats::new();
    let per_thread = 10_000u64;
    std::thread::scope(|s| {
        for t in 0..4u64 {
            let st = &st;
            s.spawn(move || {
                let mut rng = XorShift64::new(t + 1);
                for _ in 0..per_thread {
                    st.record(rng.below(1_000));
                }
            });
        }
    });
    let (count, sum, min, max) = st.snapshot();
    assert_eq!(count, 4 * per_thread);
    assert!(min <= max && max < 1_000);
    println!("count={count} sum={sum} min={min} max={max}");
    println!(
        "fast-path rate: {:.1}% ({} fast, {} fallback)",
        100.0 * st.pto_stats.fast_rate(),
        st.pto_stats.fast.get(),
        st.pto_stats.fallback.get()
    );
    println!("progress guarantee of the original code preserved: the prefix");
    println!("may always abort; the fallback is the untouched lock-free path.");
}
