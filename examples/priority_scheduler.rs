//! A deadline scheduler on the Mound priority queue — upgraded to the
//! composed cross-structure API ([`pto::core::compose`]) and measured as
//! a figure with SLO rails.
//!
//! Producers submit tasks with deadlines; workers repeatedly claim the
//! most urgent task **and record it in the scheduled set in one atomic
//! composed operation**. The end-to-end invariant is *no task lost or
//! double-scheduled between the queue and the scheduled set*: every
//! claim's set-insert must be fresh (asserted per op), and after the run
//! the scheduled set holds exactly the submitted tasks (asserted by
//! count and membership sweep). Producer submissions route through the
//! composed site too (single-participant compose), per the module
//! contract that all ops on participating structures go through
//! [`Composed::run`].
//!
//! Series: `fallback` (ordered-lock path only), `pto` (static retry
//! budget), `adaptive` (self-tuning). Output: the throughput table with
//! ratio columns, latency histograms, the metrics table (including the
//! `policy.compose_*` columns), SLO verdicts, and
//! `results/compose_sched.csv` (+ `lat_`/`slo_` siblings).
//!
//! ```sh
//! cargo run --release --example priority_scheduler
//! ```

use pto::core::compose::{ComposeMode, Composed};
use pto::core::policy::{AdaptivePolicy, PtoPolicy};
use pto::core::{ConcurrentSet, PriorityQueue};
use pto::hashtable::{FSetHashTable, HashVariant};
use pto::mound::Mound;
use pto::sim::rng::XorShift64;
use pto::sim::{ops_per_ms, Sim};
use pto_bench::lat::{self, OpKind};
use pto_bench::report::Table;
use pto_bench::{cells, slo};
use std::sync::atomic::{AtomicU64, Ordering};

const TASKS_PER_PRODUCER: u64 = 600;

fn mode_for(series: &str) -> ComposeMode {
    match series {
        "fallback" => ComposeMode::Static(PtoPolicy::with_attempts(0)),
        "pto" => ComposeMode::Static(PtoPolicy::default()),
        "adaptive" => ComposeMode::Adaptive(AdaptivePolicy::new(PtoPolicy::default())),
        other => panic!("unknown series {other}"),
    }
}

/// One scheduler run: `pairs` producers and `pairs` workers. A task key
/// encodes `(deadline << 16) | id` with lane-unique ids, so queue order
/// is deadline order and the scheduled set can be swept for exactly the
/// submitted ids. Returns ops/ms (one op = one submit or one claim).
fn run(series: &str, pairs: usize) -> f64 {
    let total_tasks = pairs as u64 * TASKS_PER_PRODUCER;
    let queue = Mound::new_pto(16);
    let scheduled = FSetHashTable::new(HashVariant::PtoInplace, 64);
    pto::sim::clock::reset();
    let submit_site = Composed::new(vec![queue.anchor()], mode_for(series));
    let claim_site = Composed::new(
        vec![queue.anchor(), scheduled.anchor()],
        mode_for(series),
    );
    let claimed = AtomicU64::new(0);
    let out = Sim::new(2 * pairs).run(|lane| {
        if lane < pairs {
            // Producer: submit tasks with pseudo-deadlines through the
            // composed site (single-participant compose: the prefix is
            // the mound's transactional push half, the fallback its
            // ordinary lock-free push under the anchor).
            let mut rng = XorShift64::new(lane as u64 + 1);
            for i in 0..TASKS_PER_PRODUCER {
                let deadline = i * 3 + rng.below(64);
                let id = lane as u64 * TASKS_PER_PRODUCER + i;
                let key = (deadline << 16) | id;
                let t0 = pto::sim::now();
                let cell = queue.compose_alloc_cell();
                let via_prefix = submit_site.run(
                    |tx| {
                        queue.tx_compose_push(tx, key as u32, cell)?;
                        Ok(true)
                    },
                    || {
                        queue.push(key);
                        false
                    },
                );
                if !via_prefix {
                    queue.compose_release_cell(cell);
                }
                lat::record(OpKind::Push, pto::sim::now() - t0);
            }
        } else {
            // Worker: claim the most urgent task and mark it scheduled,
            // atomically. A torn claim would either lose the task (popped
            // but never scheduled) or double-schedule it (insert not
            // fresh) — both assert.
            loop {
                let t0 = pto::sim::now();
                let got = claim_site.run(
                    |tx| match queue.tx_compose_pop(tx)? {
                        None => Ok(None),
                        Some((key, cell)) => {
                            let fresh = scheduled.tx_compose_update(tx, key as u64, true)?;
                            Ok(Some((key, cell, fresh)))
                        }
                    },
                    || {
                        queue
                            .pop_min()
                            .map(|key| (key as u32, u32::MAX, scheduled.insert(key)))
                    },
                );
                match got {
                    Some((key, cell, fresh)) => {
                        if cell != u32::MAX {
                            queue.compose_retire_cell(cell);
                        }
                        assert!(fresh, "task {key} was scheduled twice");
                        claimed.fetch_add(1, Ordering::Relaxed);
                        lat::record(OpKind::Pop, pto::sim::now() - t0);
                    }
                    None => {
                        if claimed.load(Ordering::Relaxed) >= total_tasks {
                            break;
                        }
                        std::hint::spin_loop();
                        // Idle worker waiting on producers: gate-aware
                        // wait, charged for its virtual duration.
                        pto::sim::spin_wait_tick();
                    }
                }
            }
        }
    });
    // End-to-end: every submitted task claimed and scheduled exactly once.
    assert_eq!(claimed.load(Ordering::Relaxed), total_tasks, "tasks lost");
    assert_eq!(scheduled.len(), total_tasks as usize, "scheduled set drifted");
    // Membership sweep: replay each producer's deterministic deadline
    // stream and require every submitted key in the scheduled set.
    for lane in 0..pairs as u64 {
        let mut rng = XorShift64::new(lane + 1);
        for i in 0..TASKS_PER_PRODUCER {
            let key = ((i * 3 + rng.below(64)) << 16) | (lane * TASKS_PER_PRODUCER + i);
            assert!(scheduled.contains(key), "task {key} lost between queue and set");
        }
    }
    assert_eq!(queue.pop_min(), None, "tasks left in the queue");
    ops_per_ms(2 * total_tasks, out.makespan)
}

fn main() {
    let series = ["fallback", "pto", "adaptive"];
    let mut t = Table::new(
        "COMPOSE — deadline scheduler: mound + scheduled set, atomic claims (ops/ms)",
        &series,
    );
    for pairs in [1usize, 2, 4] {
        let mut vals = Vec::new();
        for s in series {
            let out = cells::run_scoped(cells::cell_key(s, pairs as u64), || run(s, pairs));
            t.push_cause(2 * pairs, s, out.htm, out.mem);
            t.push_lat(2 * pairs, s, out.lat);
            t.push_met(2 * pairs, s, out.met);
            vals.push(out.value);
        }
        t.push(2 * pairs, vals);
    }
    print!("{}", t.render());
    print!("{}", t.sparklines());
    print!("{}", t.render_latency());
    print!("{}", t.render_metrics());
    let report = slo::evaluate("compose_sched", &t, &slo::spec_for("compose_sched"));
    print!("{}", report.render());
    t.write_csv("compose_sched").expect("write results/compose_sched.csv");
    t.write_latency_csv("compose_sched")
        .expect("write results/lat_compose_sched.csv");
    report
        .write_csv("compose_sched")
        .expect("write results/slo_compose_sched.csv");
    println!("-> results/compose_sched.csv (+ lat, slo); no task lost between queue and set");
    if !report.pass() {
        eprintln!("SLO rails FAILED on the scheduler figure");
        std::process::exit(1);
    }
}
