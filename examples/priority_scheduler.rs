//! A deadline scheduler on the Mound priority queue — the kind of workload
//! the paper's intro motivates for concurrent priority queues.
//!
//! Producers submit jobs with deadlines; workers repeatedly pull the most
//! urgent job. We run the same scenario on the lock-free Mound and the
//! PTO-accelerated Mound under the virtual-time simulator and report the
//! modeled speedup, plus how often the prefix transactions (which replace
//! the software DCSS/DCAS) committed.
//!
//! ```sh
//! cargo run --release --example priority_scheduler
//! ```

use pto::core::PriorityQueue;
use pto::mound::Mound;
use pto::sim::rng::XorShift64;
use pto::sim::{ops_per_ms, Sim};
use std::sync::atomic::{AtomicU64, Ordering};

const PRODUCERS: usize = 4;
const WORKERS: usize = 4;
const JOBS_PER_PRODUCER: u64 = 1_500;

fn run(q: &Mound) -> (f64, u64) {
    pto::sim::clock::reset();
    let executed = AtomicU64::new(0);
    let lateness = AtomicU64::new(0);
    let out = Sim::new(PRODUCERS + WORKERS).run(|lane| {
        if lane < PRODUCERS {
            // Producer: submit jobs with pseudo-deadlines.
            let mut rng = XorShift64::new(lane as u64 + 1);
            for i in 0..JOBS_PER_PRODUCER {
                let deadline = i * 3 + rng.below(64);
                q.push(deadline);
            }
        } else {
            // Worker: drain in deadline order.
            let mut last = 0u64;
            loop {
                match q.pop_min() {
                    Some(d) => {
                        executed.fetch_add(1, Ordering::Relaxed);
                        // Track how often urgency order regressed locally
                        // (expected: never within one worker).
                        if d < last {
                            lateness.fetch_add(1, Ordering::Relaxed);
                        }
                        last = d;
                    }
                    None => {
                        if executed.load(Ordering::Relaxed)
                            >= PRODUCERS as u64 * JOBS_PER_PRODUCER
                        {
                            break;
                        }
                        std::hint::spin_loop();
                        pto::sim::charge(pto::sim::CostKind::SpinIter);
                    }
                }
            }
        }
    });
    let total = executed.load(Ordering::Relaxed);
    assert_eq!(total, PRODUCERS as u64 * JOBS_PER_PRODUCER);
    assert_eq!(lateness.load(Ordering::Relaxed), 0, "a worker saw decreasing deadlines");
    (ops_per_ms(2 * total, out.makespan), total)
}

fn main() {
    let lockfree = Mound::new_lockfree(16);
    let (lf_tput, jobs) = run(&lockfree);
    println!("lock-free mound : {lf_tput:>10.0} ops/ms ({jobs} jobs)");

    let pto = Mound::new_pto(16);
    let (pto_tput, _) = run(&pto);
    let stats = pto.pto_stats().unwrap();
    println!(
        "PTO mound       : {:>10.0} ops/ms  ({:.1}% of DCSS/DCAS on the fast path)",
        pto_tput,
        100.0 * stats.fast_rate()
    );
    println!("modeled speedup : {:.2}x", pto_tput / lf_tput);
}
