//! Quiescence detection with the Mindicator — its original use case
//! (Liu/Luchangco/Spear: "a scalable approach to quiescence").
//!
//! Worker threads process batches; each announces the id of the batch it
//! is currently inside via `arrive`, and `depart`s when done. A reclaimer
//! thread recycles buffers of batch `b` only once `query() > b` — no
//! worker is still inside a batch ≤ b. The invariant checked here: a
//! worker never observes its announced batch already reclaimed.
//!
//! ```sh
//! cargo run --release --example quiescence_barrier
//! ```

use pto::core::Quiescence;
use pto::mindicator::PtoMindicator;
use pto::sim::rng::XorShift64;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

const WORKERS: usize = 6;
const BATCHES: u64 = 2_000;

fn main() {
    let m = PtoMindicator::new(64);
    let reclaimed_up_to = AtomicU64::new(0);
    let live_workers = AtomicUsize::new(WORKERS);
    let violations = AtomicU64::new(0);

    std::thread::scope(|s| {
        for w in 0..WORKERS {
            let (m, reclaimed, live, violations) =
                (&m, &reclaimed_up_to, &live_workers, &violations);
            s.spawn(move || {
                let mut rng = XorShift64::new(w as u64 + 1);
                for batch in 0..BATCHES {
                    m.arrive(batch);
                    if reclaimed.load(Ordering::Acquire) > batch {
                        violations.fetch_add(1, Ordering::Relaxed);
                    }
                    for _ in 0..rng.below(32) {
                        std::hint::spin_loop();
                    }
                    m.depart();
                }
                live.fetch_sub(1, Ordering::AcqRel);
            });
        }
        // The reclaimer: advance the recycled watermark to the oldest batch
        // still announced; stop when all workers are done. The Mindicator's
        // query is quiescently consistent (see the crate docs), so only act
        // on *stable* readings: the same value observed across several
        // spaced reads, with in-flight climbs given time to settle.
        let (m, reclaimed, live) = (&m, &reclaimed_up_to, &live_workers);
        s.spawn(move || {
            while live.load(Ordering::Acquire) > 0 {
                let a = m.query();
                std::thread::yield_now();
                let b = m.query();
                std::thread::yield_now();
                let c = m.query();
                if a == b && b == c && a != u64::MAX {
                    reclaimed.fetch_max(a, Ordering::AcqRel);
                }
                std::thread::yield_now();
            }
        });
    });

    assert_eq!(
        violations.load(Ordering::Relaxed),
        0,
        "reclaimed a live batch!"
    );
    assert_eq!(m.query(), u64::MAX, "all workers departed");
    println!(
        "quiescence held: {} workers x {} batches, zero premature reclamations",
        WORKERS, BATCHES
    );
    println!(
        "reclaimer advanced to batch {}",
        reclaimed_up_to.load(Ordering::Relaxed)
    );
    println!(
        "mindicator fast-path rate: {:.1}%",
        100.0 * m.stats.fast_rate()
    );
}
