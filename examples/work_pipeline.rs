//! A two-stage work pipeline on PTO'd Michael–Scott queues.
//!
//! Stage 1 threads parse "requests" and pass them to stage 2 through one
//! queue; stage 2 threads validate and emit through a second queue into a
//! sink. Demonstrates composing multiple accelerated structures, and that
//! the §2.3 optimizations (no hazard traffic, no double-checks on the
//! fast path) show up as a measured end-to-end win.
//!
//! ```sh
//! cargo run --release --example work_pipeline
//! ```

use pto::core::traits::FifoQueue;
use pto::msqueue::MsQueue;
use pto::sim::{ops_per_ms, Sim};
use std::sync::atomic::{AtomicU64, Ordering};

const STAGE1: usize = 2;
const STAGE2: usize = 2;
const ITEMS_PER_PRODUCER: u64 = 3_000;

fn run(mk: fn() -> MsQueue) -> f64 {
    let q12 = mk();
    let sink = mk();
    let produced = STAGE1 as u64 * ITEMS_PER_PRODUCER;
    let parsed = AtomicU64::new(0);
    let emitted = AtomicU64::new(0);
    pto::sim::clock::reset();
    let out = Sim::new(STAGE1 + STAGE2).run(|lane| {
        if lane < STAGE1 {
            for i in 0..ITEMS_PER_PRODUCER {
                // "Parse": tag with producer lane.
                q12.enqueue((lane as u64) << 32 | i);
                parsed.fetch_add(1, Ordering::Relaxed);
            }
        } else {
            loop {
                match q12.dequeue() {
                    Some(v) => {
                        // "Validate": flip a bit, forward.
                        sink.enqueue(v ^ 1);
                        emitted.fetch_add(1, Ordering::Relaxed);
                    }
                    None => {
                        if parsed.load(Ordering::Relaxed) == produced
                            && emitted.load(Ordering::Relaxed) == produced
                        {
                            break;
                        }
                        std::hint::spin_loop();
                        // Idle stage waiting on upstream lanes: gate-aware
                        // wait, charged for its virtual duration.
                        pto::sim::spin_wait_tick();
                    }
                }
            }
        }
    });
    assert_eq!(emitted.load(Ordering::Relaxed), produced);
    // Drain the sink and verify nothing was lost.
    let mut n = 0;
    while sink.dequeue().is_some() {
        n += 1;
    }
    assert_eq!(n, produced);
    ops_per_ms(2 * produced, out.makespan)
}

fn main() {
    let lf = run(MsQueue::new_lockfree);
    println!("lock-free pipeline : {lf:>9.0} handoffs/ms");
    let pt = run(MsQueue::new_pto);
    println!("PTO pipeline       : {pt:>9.0} handoffs/ms");
    println!("end-to-end speedup : {:.2}x", pt / lf);
}
