//! Quickstart: accelerate a nonblocking set with PTO in three lines.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use pto::core::ConcurrentSet;
use pto::bst::{Bst, BstVariant};

fn main() {
    println!("HTM backend: {}", pto::htm::hw::backend_description());

    // The paper's composed configuration: whole-operation prefix
    // transactions (2 attempts), update-phase transactions (16 attempts)
    // in their fallback, then the untouched Ellen et al. lock-free code.
    let set = Bst::new(BstVariant::Pto1Pto2);

    for k in [3u64, 1, 4, 1, 5, 9, 2, 6] {
        set.insert(k);
    }
    assert!(set.contains(4));
    assert!(!set.contains(8));
    set.remove(1);
    assert!(!set.contains(1));
    println!("set size: {}", set.len());

    // Multi-threaded use is the point: spawn a few writers.
    std::thread::scope(|s| {
        for t in 0..4u64 {
            let set = &set;
            s.spawn(move || {
                for k in (t * 1000)..(t * 1000 + 500) {
                    set.insert(k);
                }
            });
        }
    });
    println!("after 4 concurrent writers: {} keys", set.len());

    // How often did the fast path win?
    println!(
        "PTO1 (whole-op) fast-path rate: {:.1}%  (fast {} / fallback {})",
        100.0 * set.stats1.fast_rate(),
        set.stats1.fast.get(),
        set.stats1.fallback.get(),
    );
    let h = pto::htm::snapshot();
    println!(
        "HTM: {} begins, {} commits, commit rate {:.1}%",
        h.begins,
        h.commits,
        100.0 * h.commit_rate()
    );
}
