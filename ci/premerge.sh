#!/usr/bin/env bash
# Pre-merge check: hermeticity gate + the tier-1 verify from ROADMAP.md.
set -euo pipefail
cd "$(dirname "$0")/.."

./ci/check_hermetic.sh

echo "== lint: cargo clippy --workspace -- -D warnings"
cargo clippy --workspace -- -D warnings

echo "== tier-1: cargo build --release && cargo test -q"
cargo build --release
cargo test -q
