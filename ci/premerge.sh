#!/usr/bin/env bash
# Pre-merge check: hermeticity gate + the tier-1 verify from ROADMAP.md.
set -euo pipefail
cd "$(dirname "$0")/.."

./ci/check_hermetic.sh

echo "== lint: cargo clippy --workspace -- -D warnings"
cargo clippy --workspace -- -D warnings

echo "== tier-1: cargo build --release && cargo test -q"
cargo build --release
cargo test -q

echo "== trace smoke: tiny traced benchmark + Chrome-JSON structural check"
cargo run -q --release -p pto-bench --bin trace_smoke

echo "== metrics smoke: counter tracks + call-site attribution + SLO rails"
timeout 30 cargo run -q --release -p pto-bench --bin metrics_smoke

echo "== perf smoke: wallclock hot paths + BENCH_sim.json structural check"
cargo run -q --release -p pto-bench --bin perf_smoke -- --check

echo "== adaptive smoke: self-tuning policy beats/matches static budgets per regime"
timeout 30 cargo run -q --release -p pto-bench --bin adaptive_sweep -- --smoke

echo "== lincheck smoke: linearizability sweep, variant cells sharded across cores"
timeout 30 cargo run -q --release -p pto-bench --bin lincheck -- --smoke

echo "== compose smoke: cross-structure scenarios (conservation + consistency rails)"
# Bank-transfer (two hash tables, token conservation under concurrent
# audits and abort injection) and order-book (mound + index agreement),
# each across the fallback/pto/adaptive series with SLO rails, plus the
# multi-object lincheck leg (pair/transfer product specs through the WGL
# checker).
timeout 30 cargo run -q --release -p pto-bench --bin bank_transfer -- --smoke
timeout 30 cargo run -q --release -p pto-bench --bin order_book -- --smoke
timeout 30 cargo run -q --release -p pto-bench --bin compose_smoke -- --smoke

echo "== 64-lane smoke: tournament-gate liveness + dual-profile golden makespans"
# Gate invariants at server scale (64/256-lane sched tests) and the
# 64-lane Haswell/NumaIsh golden pair; artifacts already built above, so
# this re-targets the scale tests by name in seconds.
cargo test -q -p pto-sim --lib lanes
cargo test -q --test golden_makespan golden_lane_private_64lane
