#!/usr/bin/env bash
# Hermeticity gate: the default workspace must build fully offline and its
# dependency graph must contain only workspace-local packages.
#
# Fails if:
#   * any target of the default (no-feature) graph fails to build with
#     --offline, or
#   * `cargo metadata` resolves any package that is not `pto` or `pto-*`
#     (i.e. someone re-introduced a crates-io dependency).
#
# Run as part of pre-merge via ci/premerge.sh, or standalone:
#   ./ci/check_hermetic.sh

set -euo pipefail
cd "$(dirname "$0")/.."

echo "== check_hermetic: offline build of the default graph"
cargo build --release --offline --workspace --all-targets

echo "== check_hermetic: scanning the resolved dependency graph"
cargo metadata --format-version 1 --offline | python3 -c '
import json, sys

meta = json.load(sys.stdin)
bad = sorted(
    "{} {}".format(p["name"], p["version"])
    for p in meta["packages"]
    if p["name"] != "pto" and not p["name"].startswith("pto-")
)
if bad:
    print("non-workspace packages in the default dependency graph:")
    for b in bad:
        print("  " + b)
    print("the default build must stay hermetic; gate new dependencies")
    print("behind an off-by-default feature or vendor them into pto-sim.")
    sys.exit(1)
names = sorted(p["name"] for p in meta["packages"])
print("ok: {} packages, all workspace-local: {}".format(len(names), ", ".join(names)))

# The checking subsystem must itself stay hermetic: pto-check may depend
# only on pto-*-namespaced workspace crates (a checker that pulls in an
# external engine would undercut the "verify with what you ship" story).
check = next(p for p in meta["packages"] if p["name"] == "pto-check")
bad = sorted(d["name"] for d in check["dependencies"]
             if not d["name"].startswith("pto-"))
if bad:
    print("pto-check has non-workspace dependencies: " + ", ".join(bad))
    sys.exit(1)
print("ok: pto-check depends only on pto-* crates")

# The composition layer (pto_core::compose and the policies under it)
# must also verify with what it ships: pto-core may depend only on
# pto-*-namespaced workspace crates.
core = next(p for p in meta["packages"] if p["name"] == "pto-core")
bad = sorted(d["name"] for d in core["dependencies"]
             if not d["name"].startswith("pto-"))
if bad:
    print("pto-core has non-workspace dependencies: " + ", ".join(bad))
    sys.exit(1)
print("ok: pto-core depends only on pto-* crates")

# The simulator is the foundation everything instruments against (clock,
# trace, metrics, json); it must not grow dependencies at all — a pto-sim
# that pulls in siblings inverts the layering, and an external crate
# breaks hermeticity outright.
sim = next(p for p in meta["packages"] if p["name"] == "pto-sim")
bad = sorted(d["name"] for d in sim["dependencies"])
if bad:
    print("pto-sim must stay dependency-free, found: " + ", ".join(bad))
    sys.exit(1)
print("ok: pto-sim is dependency-free (foundation layer)")
'
